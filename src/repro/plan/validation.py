"""Structural validation of query execution plans.

``validate_qep`` checks every invariant the runtime relies on and raises
:class:`~repro.common.errors.PlanError` with a precise message on the
first violation.  Strategies call it once before execution so that
scheduling bugs surface as plan errors instead of simulation deadlocks.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.plan.chains import ancestor_closure, iterator_order
from repro.plan.operators import MatOp, OutputOp, ProbeOp, ScanOp
from repro.plan.qep import QEP


def validate_qep(qep: QEP) -> None:
    """Raise :class:`PlanError` unless ``qep`` is structurally sound."""
    _check_chain_shapes(qep)
    _check_sources_unique(qep)
    _check_joins(qep)
    # These raise on cycles / order violations as a side effect.
    ancestor_closure(qep)
    iterator_order(qep)
    _check_cardinality_flow(qep)


def _check_chain_shapes(qep: QEP) -> None:
    for chain in qep.chains:
        ops = chain.operators
        if not isinstance(ops[0], ScanOp):
            raise PlanError(f"chain {chain.name!r} does not start with a scan")
        if not isinstance(ops[-1], (MatOp, OutputOp)):
            raise PlanError(f"chain {chain.name!r} must end with mat or output "
                            f"(a blocking edge needs an explicit mat)")
        for op in ops[1:-1]:
            if not isinstance(op, ProbeOp):
                raise PlanError(f"chain {chain.name!r}: interior operator "
                                f"{op.name!r} is not a probe")
        if ops[0].relation != chain.source_relation:
            raise PlanError(f"chain {chain.name!r}: scan reads "
                            f"{ops[0].relation!r}, chain source is "
                            f"{chain.source_relation!r}")


def _check_sources_unique(qep: QEP) -> None:
    seen: set[str] = set()
    for chain in qep.chains:
        if chain.source_relation in seen:
            raise PlanError(f"relation {chain.source_relation!r} is scanned "
                            "by more than one chain")
        seen.add(chain.source_relation)


def _check_joins(qep: QEP) -> None:
    fed: set[str] = set()
    probed: set[str] = set()
    for chain in qep.chains:
        if chain.feeds is not None:
            if chain.feeds.name in fed:
                raise PlanError(f"join {chain.feeds.name!r} is fed twice")
            fed.add(chain.feeds.name)
        for join in chain.probe_joins():
            if join.name in probed:
                raise PlanError(f"join {join.name!r} is probed twice")
            probed.add(join.name)
    declared = set(qep.joins)
    if fed != declared:
        raise PlanError(f"fed joins {sorted(fed)} do not match declared "
                        f"joins {sorted(declared)}")
    if probed != declared:
        raise PlanError(f"probed joins {sorted(probed)} do not match declared "
                        f"joins {sorted(declared)}")


def _check_cardinality_flow(qep: QEP) -> None:
    for chain in qep.chains:
        previous_out = None
        for op in chain.operators:
            if op.estimated_input_cardinality < 0 or op.estimated_output_cardinality < 0:
                raise PlanError(f"chain {chain.name!r}: operator {op.name!r} "
                                "has negative cardinality estimates")
            if previous_out is not None:
                drift = abs(op.estimated_input_cardinality - previous_out)
                tolerance = 1e-6 * max(1.0, previous_out)
                if drift > tolerance:
                    raise PlanError(
                        f"chain {chain.name!r}: operator {op.name!r} input "
                        f"estimate {op.estimated_input_cardinality} does not "
                        f"match upstream output {previous_out}")
            previous_out = op.estimated_output_cardinality
