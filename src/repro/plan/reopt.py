"""QEP-level plan revision: build/probe swapping of pending joins.

This is the concrete dynamic re-optimization the DQO applies when
collected runtime statistics (Section 3.1) invalidate a pending join's
orientation: the optimizer picked the build side from *estimates*; once
upstream blocking edges complete with observed sizes, a pending join may
turn out to have its larger input on the build side.  Swapping puts the
smaller input in memory and lets the larger one stream — a classic
mid-query re-optimization step (Kabra & DeWitt's [9] family), applicable
only while *both* chains touching the join are still untouched.

The transformation is pure: it takes a QEP and returns a new, validated
QEP; the runtime decides whether it may be applied (both chains pristine)
and rebuilds the affected fragments.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.plan.operators import JoinSpec, MatOp, Operator, ProbeOp, ScanOp
from repro.plan.qep import QEP, PipelineChain
from repro.plan.validation import validate_qep


def swap_join_sides(qep: QEP, join_name: str, tuple_size: int) -> QEP:
    """Return a new QEP with ``join_name``'s build and probe sides swapped.

    The chain that fed the join's build becomes the probing chain and
    inherits the downstream pipeline; the chain that probed it now
    terminates with the join's build mat.  Every other chain is reused
    unchanged.  The result cardinality of the join — and of everything
    downstream — is invariant under the swap.
    """
    try:
        old_join = qep.joins[join_name]
    except KeyError:
        raise PlanError(f"no join named {join_name!r}") from None
    feeder = qep.chain_feeding(old_join)      # X: ... -> mat[K]
    prober = qep.chain_probing(old_join)      # Y: ... -> probe[K] -> rest

    probe_index = next(i for i, op in enumerate(prober.operators)
                       if isinstance(op, ProbeOp) and op.join is old_join)

    new_join = JoinSpec(
        name=old_join.name,
        build_relations=old_join.probe_relations,
        probe_relations=old_join.build_relations,
        crossing_selectivity=old_join.crossing_selectivity,
        estimated_build_cardinality=old_join.estimated_probe_cardinality,
        estimated_probe_cardinality=old_join.estimated_build_cardinality,
        estimated_output_cardinality=old_join.estimated_output_cardinality,
        actual_build_cardinality=old_join.actual_probe_cardinality,
        actual_probe_cardinality=old_join.actual_build_cardinality,
        actual_output_cardinality=old_join.actual_output_cardinality,
        actual_fanout_factor=old_join.actual_fanout_factor)

    # New prober chain (old feeder): keep its prefix, append the probe
    # and the old prober's downstream pipeline.
    feeder_prefix = feeder.operators[:-1]  # everything before mat[K]
    upstream_out = (feeder_prefix[-1].estimated_output_cardinality
                    if feeder_prefix else 0.0)
    new_probe = ProbeOp(
        name=f"probe[{new_join.name}]",
        join=new_join,
        estimated_input_cardinality=upstream_out,
        estimated_output_cardinality=old_join.estimated_output_cardinality,
        memory_bytes=int(new_join.estimated_build_cardinality * tuple_size))
    downstream = [_rebind(op, old_join, new_join)
                  for op in prober.operators[probe_index + 1:]]
    new_prober_ops = feeder_prefix + [new_probe] + downstream
    new_prober = PipelineChain(feeder.name, feeder.source_relation,
                               new_prober_ops)

    # New feeder chain (old prober): keep its prefix, terminate with the
    # build mat.
    prober_prefix = prober.operators[:probe_index]
    prefix_out = (prober_prefix[-1].estimated_output_cardinality
                  if prober_prefix else 0.0)
    new_mat = MatOp(
        name=f"mat[{new_join.name}]",
        join=new_join,
        estimated_input_cardinality=prefix_out,
        estimated_output_cardinality=prefix_out,
        memory_bytes=int(new_join.estimated_build_cardinality * tuple_size))
    new_feeder = PipelineChain(prober.name, prober.source_relation,
                               prober_prefix + [new_mat])

    replaced = {feeder.name: new_prober, prober.name: new_feeder}
    chains = [replaced.get(chain.name, chain) for chain in qep.chains]
    joins = dict(qep.joins)
    joins[join_name] = new_join
    ordered = _topological_order(chains)
    new_qep = QEP(ordered, joins)
    validate_qep(new_qep)
    return new_qep


def _rebind(op: Operator, old_join: JoinSpec, new_join: JoinSpec) -> Operator:
    """Operators downstream of the swapped probe are reused as-is.

    They never reference the swapped join (it appears exactly once as a
    probe), so rebinding is the identity; the indirection documents the
    invariant and guards it.
    """
    if isinstance(op, (ProbeOp, MatOp)) and getattr(op, "join", None) is old_join:
        raise PlanError(f"operator {op.name!r} still references the "
                        "swapped join downstream of its probe")
    return op


def _topological_order(chains: list[PipelineChain]) -> list[PipelineChain]:
    """Stable topological order: ancestors before dependents.

    Preserves the original relative order among independent chains (the
    optimizer's iterator-order intent).
    """
    feeder_of: dict[str, PipelineChain] = {}
    for chain in chains:
        if chain.feeds is not None:
            feeder_of[chain.feeds.name] = chain

    ordered: list[PipelineChain] = []
    visiting: set[str] = set()
    placed: set[str] = set()

    def visit(chain: PipelineChain) -> None:
        if chain.name in placed:
            return
        if chain.name in visiting:
            raise PlanError(f"cyclic dependency through {chain.name!r}")
        visiting.add(chain.name)
        for join in chain.probe_joins():
            feeder = feeder_of.get(join.name)
            if feeder is None:
                raise PlanError(f"no chain feeds join {join.name!r}")
            visit(feeder)
        visiting.discard(chain.name)
        placed.add(chain.name)
        ordered.append(chain)

    for chain in chains:
        visit(chain)
    return ordered
