"""Macro-expansion of a logical join tree into a physical QEP.

Convention: the **left** child of every join-tree node is the build
(blocking) side, the **right** child is the probe (pipelinable) side —
the optimizer orients the tree before handing it over.

The expansion of Section 2.2 falls out naturally:

* every leaf opens a new pipeline chain with a scan;
* a join terminates its build subtree's open chain with a ``mat`` (the
  hash-table build) and appends a probe operator to its probe subtree's
  open chain;
* the root chain ends with an output operator.

Chain order is iterator order: for each join, all build-side chains come
before the probe-side chains, which reproduces the paper's
``{pA, pB, pC, pD, pE}`` example.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.catalog.catalog import Catalog
from repro.common.errors import PlanError
from repro.plan.operators import JoinSpec, MatOp, OutputOp, ProbeOp, ScanOp
from repro.plan.qep import QEP, PipelineChain
from repro.query.tree import JoinTree


def build_qep(catalog: Catalog, tree: JoinTree, *,
              actual_output_factors: Optional[Mapping[str, float]] = None,
              scan_selectivities: Optional[Mapping[str, float]] = None) -> QEP:
    """Expand ``tree`` into a QEP annotated with catalog estimates.

    Parameters
    ----------
    actual_output_factors:
        Optional per-join multipliers applied to the *actual* output
        cardinality (join name -> factor).  Estimates keep the catalog
        values; this is how workloads inject estimation error.
    scan_selectivities:
        Optional per-relation selectivity of a local selection applied by
        the scan (relation name -> selectivity in (0, 1]).
    """
    factors = dict(actual_output_factors or {})
    scan_sels = dict(scan_selectivities or {})
    builder = _Builder(catalog, factors, scan_sels)
    qep = builder.build(tree)
    unknown = set(factors) - set(qep.joins)
    if unknown:
        raise PlanError(f"actual_output_factors for unknown joins: {sorted(unknown)}")
    return qep


class _Builder:
    def __init__(self, catalog: Catalog, factors: dict[str, float],
                 scan_sels: dict[str, float]):
        self.catalog = catalog
        self.factors = factors
        self.scan_sels = scan_sels
        self.joins: dict[str, JoinSpec] = {}
        self.closed_chains: list[PipelineChain] = []
        self._join_counter = 0

    def build(self, tree: JoinTree) -> QEP:
        open_chain = self._expand(tree)
        final_card = open_chain["cardinality"]
        open_chain["ops"].append(OutputOp(
            name="output",
            estimated_input_cardinality=final_card,
            estimated_output_cardinality=final_card))
        self._close(open_chain)
        return QEP(self.closed_chains, self.joins)

    # -- expansion ---------------------------------------------------------
    def _expand(self, tree: JoinTree) -> dict:
        """Return the open (still growing) chain for this subtree.

        The open chain is a mutable dict with the scan source, operator
        list, and running estimated/actual cardinalities of the pipeline.
        """
        if tree.is_leaf:
            return self._open_leaf_chain(tree.relation)

        build_chain = self._expand(tree.left)
        join = self._make_join(tree)
        self._terminate_with_build(build_chain, join)

        probe_chain = self._expand(tree.right)
        self._append_probe(probe_chain, join)
        return probe_chain

    def _open_leaf_chain(self, relation_name: str) -> dict:
        relation = self.catalog.relation(relation_name)
        selectivity = self.scan_sels.get(relation_name, 1.0)
        out_card = relation.cardinality * selectivity
        scan = ScanOp(
            name=f"scan({relation_name})",
            relation=relation_name,
            scan_selectivity=selectivity,
            estimated_input_cardinality=relation.cardinality,
            estimated_output_cardinality=out_card)
        return {
            "source": relation_name,
            "ops": [scan],
            "cardinality": out_card,          # estimated pipeline cardinality
            "actual_cardinality": out_card,   # actual, with injected errors
        }

    def _make_join(self, tree: JoinTree) -> JoinSpec:
        self._join_counter += 1
        name = f"J{self._join_counter}"
        build_rels = tree.left.relations()
        probe_rels = tree.right.relations()
        crossing = 1.0
        found_edge = False
        stats = self.catalog.statistics
        for a in build_rels:
            for b in probe_rels:
                if stats.has_edge(a, b):
                    crossing *= stats.selectivity(a, b)
                    found_edge = True
        if not found_edge:
            raise PlanError(f"join {name} between {build_rels} and {probe_rels} "
                            "has no join edge (cross product)")
        join = JoinSpec(
            name=name,
            build_relations=build_rels,
            probe_relations=probe_rels,
            crossing_selectivity=crossing,
            actual_fanout_factor=self.factors.get(name, 1.0))
        self.joins[name] = join
        return join

    def _terminate_with_build(self, chain: dict, join: JoinSpec) -> None:
        cardinality = chain["cardinality"]
        actual = chain["actual_cardinality"]
        tuple_size = self.catalog.result_tuple_size
        mat = MatOp(
            name=f"mat[{join.name}]",
            join=join,
            estimated_input_cardinality=cardinality,
            estimated_output_cardinality=cardinality,
            memory_bytes=int(cardinality * tuple_size))
        chain["ops"].append(mat)
        join.estimated_build_cardinality = cardinality
        join.actual_build_cardinality = actual
        self._close(chain)

    def _append_probe(self, chain: dict, join: JoinSpec) -> None:
        in_card = chain["cardinality"]
        actual_in = chain["actual_cardinality"]
        join.estimated_probe_cardinality = in_card
        join.actual_probe_cardinality = actual_in
        out_card = in_card * join.estimated_fanout()
        join.estimated_output_cardinality = out_card
        actual_out = actual_in * join.actual_fanout()
        join.actual_output_cardinality = actual_out
        tuple_size = self.catalog.result_tuple_size
        probe = ProbeOp(
            name=f"probe[{join.name}]",
            join=join,
            estimated_input_cardinality=in_card,
            estimated_output_cardinality=out_card,
            memory_bytes=int(join.estimated_build_cardinality * tuple_size))
        chain["ops"].append(probe)
        chain["cardinality"] = out_card
        chain["actual_cardinality"] = actual_out

    def _close(self, chain: dict) -> None:
        name = f"p{chain['source']}"
        if any(existing.name == name for existing in self.closed_chains):
            raise PlanError(f"relation {chain['source']!r} scanned twice")
        self.closed_chains.append(
            PipelineChain(name, chain["source"], chain["ops"]))
