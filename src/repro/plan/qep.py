"""Query execution plans and their pipeline chains."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import PlanError
from repro.plan.operators import JoinSpec, MatOp, Operator, OutputOp, ProbeOp, ScanOp


class PipelineChain:
    """A maximal set of physical operators linked by pipelinable edges.

    The first operator consumes the chain's source (a wrapper relation);
    tuples then flow through the remaining operators one batch at a time.
    If the chain's output crosses a blocking edge, its last operator is a
    :class:`MatOp` and :attr:`feeds` names the join whose build side it
    fills; the root chain ends with :class:`OutputOp` instead.
    """

    def __init__(self, name: str, source_relation: str,
                 operators: list[Operator]):
        if not operators:
            raise PlanError(f"chain {name!r} has no operators")
        if not isinstance(operators[0], ScanOp):
            raise PlanError(f"chain {name!r} must start with a scan")
        self.name = name
        self.source_relation = source_relation
        self.operators = list(operators)

    # -- structure ---------------------------------------------------------
    @property
    def scan(self) -> ScanOp:
        """The source-consuming scan at the head of the chain."""
        return self.operators[0]  # type: ignore[return-value]

    @property
    def terminal(self) -> Operator:
        """The last operator (a MatOp, or OutputOp for the root chain)."""
        return self.operators[-1]

    @property
    def feeds(self) -> Optional[JoinSpec]:
        """The join whose build this chain fills, or None for the root chain."""
        terminal = self.terminal
        if isinstance(terminal, MatOp):
            return terminal.join
        return None

    @property
    def is_root(self) -> bool:
        """True for the chain that produces the final query result."""
        return isinstance(self.terminal, OutputOp)

    def probe_joins(self) -> list[JoinSpec]:
        """Joins probed inside this chain, in pipeline order."""
        return [op.join for op in self.operators if isinstance(op, ProbeOp)]

    # -- annotations -------------------------------------------------------
    @property
    def estimated_input_cardinality(self) -> float:
        """Tuples this chain pulls from its source."""
        return self.operators[0].estimated_input_cardinality

    @property
    def estimated_output_cardinality(self) -> float:
        """Tuples the chain's terminal operator receives/emits."""
        return self.operators[-1].estimated_output_cardinality

    def memory_requirement(self) -> int:
        """``Σ mem(op)`` over the chain (M-schedulability, Section 4.1)."""
        return sum(op.memory_bytes for op in self.operators)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self.operators)

    def __len__(self) -> int:
        return len(self.operators)

    def describe(self) -> str:
        """One-line rendering, e.g. ``pA: scan(A) -> mat[J1]``."""
        parts = []
        for op in self.operators:
            if isinstance(op, ScanOp):
                parts.append(f"scan({op.relation})")
            elif isinstance(op, ProbeOp):
                parts.append(f"probe[{op.join.name}]")
            elif isinstance(op, MatOp):
                target = op.join.name if op.join else "temp"
                parts.append(f"mat[{target}]")
            elif isinstance(op, OutputOp):
                parts.append("output")
            else:
                parts.append(op.name)
        return f"{self.name}: " + " -> ".join(parts)

    def __repr__(self) -> str:
        return f"PipelineChain({self.describe()})"


class QEP:
    """A complete query execution plan.

    ``chains`` are stored in **iterator order** — the order a classical
    iterator-model engine would execute them (left-to-right recursion,
    Section 2.3); the sequential baseline executes them exactly in this
    order, and the dynamic scheduler uses it only as a tie-breaker.
    """

    def __init__(self, chains: list[PipelineChain], joins: dict[str, JoinSpec],
                 total_memory_estimate: Optional[int] = None):
        if not chains:
            raise PlanError("a QEP needs at least one chain")
        self.chains = list(chains)
        self.joins = dict(joins)
        self._by_name = {chain.name: chain for chain in self.chains}
        if len(self._by_name) != len(self.chains):
            raise PlanError("duplicate chain names in QEP")
        roots = [chain for chain in self.chains if chain.is_root]
        if len(roots) != 1:
            raise PlanError(f"QEP must have exactly one root chain, got {len(roots)}")
        self.root = roots[0]
        self.total_memory_estimate = (
            total_memory_estimate if total_memory_estimate is not None
            else self.peak_memory_estimate())

    def chain(self, name: str) -> PipelineChain:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlanError(f"no chain named {name!r}") from None

    def chain_feeding(self, join: JoinSpec) -> PipelineChain:
        """The chain whose terminal mat fills ``join``'s build side."""
        for chain in self.chains:
            if chain.feeds is join:
                return chain
        raise PlanError(f"no chain feeds join {join.name!r}")

    def chain_probing(self, join: JoinSpec) -> PipelineChain:
        """The chain containing ``join``'s probe operator."""
        for chain in self.chains:
            if join in chain.probe_joins():
                return chain
        raise PlanError(f"no chain probes join {join.name!r}")

    def source_relations(self) -> list[str]:
        """Source relation of each chain, in iterator order."""
        return [chain.source_relation for chain in self.chains]

    def peak_memory_estimate(self) -> int:
        """Upper bound on resident hash-table memory: all builds at once."""
        return sum(op.memory_bytes for chain in self.chains for op in chain)

    def describe(self) -> str:
        """Multi-line rendering of every chain plus the dependency edges."""
        lines = [chain.describe() for chain in self.chains]
        for chain in self.chains:
            if chain.feeds is not None:
                consumer = self.chain_probing(chain.feeds)
                lines.append(f"  {chain.name} --[{chain.feeds.name}]--> "
                             f"{consumer.name} (blocking)")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[PipelineChain]:
        return iter(self.chains)

    def __len__(self) -> int:
        return len(self.chains)

    def __repr__(self) -> str:
        return f"QEP({len(self.chains)} chains, {len(self.joins)} joins)"
