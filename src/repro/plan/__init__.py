"""Physical plan model.

A :class:`QEP` is the macro-expansion of a logical join tree into physical
operators (Section 2.2 of the paper): scans, asymmetric hash joins (one
blocking build input, one pipelinable probe input) and explicit ``mat``
operators before every blocking edge.  The QEP decomposes into maximal
**pipeline chains** (PCs); blocking edges induce the dependency
constraints the dynamic scheduler works with.
"""

from repro.plan.operators import (
    MatOp,
    Operator,
    OutputOp,
    ProbeOp,
    ScanOp,
    JoinSpec,
)
from repro.plan.qep import QEP, PipelineChain
from repro.plan.builder import build_qep
from repro.plan.chains import (
    ancestor_closure,
    direct_ancestors,
    iterator_order,
)
from repro.plan.validation import validate_qep

__all__ = [
    "JoinSpec",
    "MatOp",
    "Operator",
    "OutputOp",
    "PipelineChain",
    "ProbeOp",
    "QEP",
    "ScanOp",
    "ancestor_closure",
    "build_qep",
    "direct_ancestors",
    "iterator_order",
    "validate_qep",
]
