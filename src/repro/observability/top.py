"""``repro top`` — a terminal dashboard for a live run.

Connects to the SSE ``/stream`` endpoint of a serving live run
(``repro live --serve PORT``) and redraws a compact dashboard on every
published snapshot: run clock and result progress, the memory budget
bar, per-fragment throughput, source queue depths, and the live
stall-attribution breakdown.

The drawing pipeline is deliberately split so it can be tested without
a terminal:

* :func:`render_top` — pure ``snapshot dict -> list[str]``;
* :func:`stream_snapshots` — a generator of snapshot dicts from an SSE
  socket (plain :mod:`http.client`, no dependencies);
* :func:`run_top` — the curses loop gluing the two together
  (:mod:`curses` is imported lazily so headless platforms can still use
  ``--once`` / ``--replay``).

``--replay DUMP`` renders the final snapshot embedded in a
flight-recorder dump instead of connecting anywhere — the post-mortem
twin of the live view.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: reconnect backoff: first retry delay, cap, and consecutive-failure
#: budget before `repro watch` / `repro top` give up for real.
RECONNECT_BACKOFF_S = 0.5
RECONNECT_MAX_BACKOFF_S = 8.0
RECONNECT_MAX_FAILURES = 6

#: glyphs for the memory bar; ASCII so any terminal renders it.
_BAR_FILL = "#"
_BAR_EMPTY = "-"


def _bar(fraction: float, width: int) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return _BAR_FILL * filled + _BAR_EMPTY * (width - filled)


def _fmt_count(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e4:
        return f"{value / 1e3:.1f}k"
    return f"{value:,.0f}"


def render_top(snapshot: Optional[Dict[str, Any]], width: int = 80) -> List[str]:
    """Render one snapshot as fixed-width text lines (pure function).

    Dispatches on the snapshot's ``kind``: a multi-tenant service
    snapshot (``repro serve``) gets the fleet view, anything else the
    single-query view — so ``repro top --connect`` works against both
    a serving live run and the always-on daemon.
    """
    if snapshot is None:
        return ["repro top — waiting for first snapshot..."]
    if snapshot.get("kind") == "service":
        return render_service_top(snapshot, width)
    lines: List[str] = []
    header = (f"repro top — {snapshot['strategy']}  "
              f"t={snapshot['now']:.2f}s  "
              f"tuples={_fmt_count(snapshot['result_tuples'])}  "
              f"batches={_fmt_count(snapshot['batches'])}  "
              f"decisions={snapshot['decisions']}")
    lines.append(header[:width])

    memory = snapshot["memory"]
    total = memory["total"] or 1
    used_frac = memory["used"] / total
    bar_width = max(10, width - 46)
    lines.append(f"memory [{_bar(used_frac, bar_width)}] "
                 f"{memory['used'] / 1e6:6.1f}/{total / 1e6:.1f} MB "
                 f"(peak {memory['peak'] / 1e6:.1f})"[:width])

    stall_time = snapshot["stall_time"]
    stalls = sorted(snapshot["stalls"].items(), key=lambda kv: -kv[1])
    stall_text = "  ".join(f"{cause}={seconds:.2f}s"
                           for cause, seconds in stalls[:4]) or "none"
    lines.append(f"stalls {stall_time:8.2f}s total  {stall_text}"[:width])
    lines.append("")

    lines.append(f"{'FRAGMENT':<18} {'KIND':<5} {'STATUS':<8} "
                 f"{'IN':>9} {'OUT':>9} {'BATCH':>7} {'TUP/S':>10}"[:width])
    fragments = sorted(snapshot["fragments"],
                       key=lambda f: (-f["throughput"], f["name"]))
    for fragment in fragments:
        lines.append(
            f"{fragment['name']:<18.18} {fragment['kind']:<5} "
            f"{fragment['status']:<8} {_fmt_count(fragment['tuples_in']):>9} "
            f"{_fmt_count(fragment['tuples_out']):>9} "
            f"{_fmt_count(fragment['batches']):>7} "
            f"{fragment['throughput']:>10.1f}"[:width])
    lines.append("")

    lines.append(f"{'SOURCE':<18} {'QUEUED':>9} {'MSGS':>6} {'RATE':>10}"[:width])
    for source, queue in sorted(snapshot["queues"].items()):
        lines.append(f"{source:<18.18} {_fmt_count(queue['tuples']):>9} "
                     f"{queue['messages']:>6} {queue['rate']:>10.1f}"[:width])
    return lines


def render_service_top(snapshot: Dict[str, Any],
                       width: int = 80) -> List[str]:
    """The multi-tenant fleet view of one service snapshot."""
    lines: List[str] = []
    state = "DRAINING" if snapshot["draining"] else "serving"
    header = (f"repro top — service ({state})  "
              f"up={snapshot['now']:.1f}s  "
              f"active={snapshot['active']}  "
              f"queued={snapshot['admission_queued']}  "
              f"done={_fmt_count(snapshot['completed'])}  "
              f"failed={snapshot['failed']}  "
              f"rejected={snapshot['rejected']}")
    lines.append(header[:width])

    latency = snapshot["latency"]
    lines.append(
        f"latency p50={latency['p50_s'] * 1e3:.1f}ms "
        f"p95={latency['p95_s'] * 1e3:.1f}ms "
        f"p99={latency['p99_s'] * 1e3:.1f}ms  "
        f"rate={latency.get('throughput_qps', 0.0):.1f} q/s  "
        f"batches={_fmt_count(snapshot['batches'])}"[:width])

    pool = snapshot["pool"]
    if pool["total"]:
        bar_width = max(10, width - 48)
        leased_frac = pool["leased"] / pool["total"]
        lines.append(f"pool   [{_bar(leased_frac, bar_width)}] "
                     f"{pool['leased'] / 1e6:6.1f}/"
                     f"{pool['total'] / 1e6:.1f} MB "
                     f"({pool['active_leases']} leases)"[:width])
    else:
        lines.append(f"pool   unbounded "
                     f"({pool['active_leases']} leases, "
                     f"{pool['leased'] / 1e6:.1f} MB leased)"[:width])

    stalls = sorted(snapshot["stalls"].items(), key=lambda kv: -kv[1])
    stall_text = "  ".join(f"{cause}={seconds:.2f}s"
                           for cause, seconds in stalls[:4]) or "none"
    lines.append(f"stalls {stall_text}"[:width])
    lines.append("")

    workers = snapshot.get("workers") or []
    if workers:
        up = sum(1 for row in workers if row["state"] == "up")
        lines.append(f"{'WORKER':<8} {'STATE':<6} {'ACTIVE':>7} "
                     f"{'QUEUED':>7} {'DONE':>8} {'STEALS':>7} "
                     f"{'RESTARTS':>9}   fleet {up}/{len(workers)} up, "
                     f"{snapshot.get('steals', 0)} steals"[:width])
        for row in workers:
            lines.append(
                f"{row['id']:<8} {row['state']:<6} {row['active']:>7} "
                f"{row['queued']:>7} {_fmt_count(row['completed']):>8} "
                f"{row['steals']:>7} {row['restarts']:>9}"[:width])
        lines.append("")

    lines.append(f"{'TENANT':<14} {'PRI':>5} {'FLIGHT':>7} {'DONE':>8} "
                 f"{'FAIL':>5} {'REJ':>5} {'WAIT':>9} {'LATENCY':>9} "
                 f"{'SLO':>7}"[:width])
    for tenant in snapshot["tenants"]:
        lines.append(
            f"{tenant['name']:<14.14} {tenant['priority']:>5.1f} "
            f"{tenant['in_flight']:>7} {_fmt_count(tenant['completed']):>8} "
            f"{tenant['failed']:>5} {tenant['rejected']:>5} "
            f"{tenant['mean_wait_s'] * 1e3:>7.1f}ms "
            f"{tenant['mean_latency_s'] * 1e3:>7.1f}ms "
            f"{_tenant_slo_status(snapshot, tenant['name']):>7}"[:width])
    lines.append("")

    lines.append(f"{'QUERY':<12} {'TENANT':<12} {'STRAT':<7} "
                 f"{'STATE':<8} {'WAIT':>9} {'AGE':>9}"[:width])
    rows = list(snapshot["queries"]) + list(snapshot["recent"])
    for record in rows[:12]:
        lines.append(
            f"{record['id']:<12.12} {record['tenant']:<12.12} "
            f"{record['strategy']:<7.7} {record['state']:<8} "
            f"{record['admission_wait'] * 1e3:>7.1f}ms "
            f"{record['latency_s'] * 1e3:>7.1f}ms"[:width])
    return lines


def worker_transitions(previous: Optional[Dict[str, Any]],
                       current: Dict[str, Any]) -> List[str]:
    """Fleet changes between two service snapshots, as notice lines.

    Pure and deterministic (``repro watch`` prints these to stderr):
    a worker whose state flipped yields ``worker N down``/``worker N
    up``; a restart counter that advanced yields a respawn notice even
    when the down/up flip happened between two publishes.
    """
    notices: List[str] = []
    before = {row["id"]: row
              for row in (previous or {}).get("workers") or []}
    for row in current.get("workers") or []:
        prior = before.get(row["id"])
        if prior is None:
            continue
        restarted = row["restarts"] - prior["restarts"]
        if restarted > 0:
            notices.append(
                f"worker {row['id']} died and was respawned "
                f"(restarts {row['restarts']}, now {row['state']})")
        elif row["state"] != prior["state"]:
            notices.append(f"worker {row['id']} {row['state']}")
    return notices


def _tenant_slo_status(snapshot: Dict[str, Any], name: str) -> str:
    """The SLO column cell: FIRING, worst compliance %, or ``-``.

    Objectives declared for ``*`` cover every tenant; a tenant with no
    covering objective shows ``-``.
    """
    objectives = [o for o in (snapshot.get("slo") or [])
                  if o.get("tenant") in (name, "*")]
    if not objectives:
        return "-"
    if any(o.get("alerting") for o in objectives):
        return "FIRING"
    worst = min(float(o.get("compliance", 1.0)) for o in objectives)
    return f"{worst * 100:.2f}%"


def _parse_endpoint(endpoint: str) -> Tuple[str, int]:
    # Accept a full URL (`http://host:port[/...]`, as printed by
    # `repro serve`) as well as the bare HOST:PORT form.
    if "//" in endpoint:
        endpoint = endpoint.split("//", 1)[1]
    endpoint = endpoint.split("/", 1)[0]
    host, sep, port = endpoint.rpartition(":")
    if not sep or not port.isdigit():
        raise ConfigurationError(
            f"expected HOST:PORT to connect to, got {endpoint!r}")
    return (host or "127.0.0.1", int(port))


class StreamStatus:
    """Out-of-band status of one :func:`stream_snapshots` pass.

    A server that finishes sends ``event: end`` before closing; a server
    that died (restart, SIGKILL) just drops the TCP stream.  The
    generator return value can't distinguish the two, so callers that
    want to reconnect pass a status object and check :attr:`ended`.
    """

    def __init__(self) -> None:
        #: the server sent the explicit ``event: end`` marker.
        self.ended = False
        #: frames yielded during this connection.
        self.frames = 0


def stream_snapshots(endpoint: str, timeout: float = 10.0,
                     status: Optional[StreamStatus] = None
                     ) -> Iterator[Dict[str, Any]]:
    """Yield snapshot dicts from a live run's SSE ``/stream`` endpoint.

    Ends cleanly when the run finishes (the server sends ``event: end``
    and closes).  Raises :class:`ConfigurationError` when nothing is
    listening at ``endpoint``.  SLO alert frames arrive interleaved with
    snapshots (``kind: alert``); callers filter on ``kind``.
    """
    host, port = _parse_endpoint(endpoint)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/stream", headers={"Accept": "text/event-stream"})
        response = conn.getresponse()
        if response.status != 200:
            raise ConfigurationError(
                f"{endpoint}/stream answered HTTP {response.status}")
        ended = False
        for raw in response:
            line = raw.decode("utf-8", errors="replace").rstrip("\n\r")
            if line.startswith("event:") and line.split(":", 1)[1].strip() == "end":
                ended = True
                if status is not None:
                    status.ended = True
            elif line.startswith("data:") and not ended:
                if status is not None:
                    status.frames += 1
                yield json.loads(line.split(":", 1)[1].strip())
            elif ended and not line:
                return
    except (ConnectionError, OSError) as exc:
        raise ConfigurationError(
            f"cannot stream from {endpoint}: {exc} "
            f"(is `repro live --serve` or `repro serve` running?)")
    finally:
        conn.close()


def stream_snapshots_reconnect(
        endpoint: str, timeout: float = 10.0,
        backoff_s: float = RECONNECT_BACKOFF_S,
        max_backoff_s: float = RECONNECT_MAX_BACKOFF_S,
        max_failures: int = RECONNECT_MAX_FAILURES,
        on_reconnect: Optional[Callable[[float, int], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        fail_fast: bool = False,
        _stream: Callable[..., Iterator[Dict[str, Any]]] = stream_snapshots,
        ) -> Iterator[Dict[str, Any]]:
    """:func:`stream_snapshots` with capped-exponential-backoff reconnect.

    A dropped connection (service restart, network blip) re-attaches
    instead of killing the dashboard: the delay starts at ``backoff_s``
    and doubles up to ``max_backoff_s``; any successfully received frame
    resets it.  Only a server-sent ``event: end`` ends the stream
    cleanly; ``max_failures`` *consecutive* dead connections re-raise
    the last error.  With ``fail_fast``, a connection that dies before
    the stream *ever* produced a frame raises immediately — the CLI
    uses this so a typo'd endpoint is one crisp error, not a silent
    20-second retry loop (a server that was once up still reconnects).
    ``on_reconnect(delay, attempt)`` is called before each sleep (the
    CLI prints a notice there); ``sleep`` and ``_stream`` are
    injectable so tests run without a clock or socket.
    """
    delay = backoff_s
    failures = 0
    connected = False
    while True:
        status = StreamStatus()
        error: Optional[ConfigurationError] = None
        try:
            for snapshot in _stream(endpoint, timeout, status):
                if status.frames == 1:
                    connected = True
                    failures = 0
                    delay = backoff_s
                yield snapshot
        except ConfigurationError as exc:
            error = exc
        if status.ended:
            return
        failures += 1
        if (fail_fast and not connected) or failures > max_failures:
            if error is not None:
                raise error
            raise ConfigurationError(
                f"stream from {endpoint} dropped {failures} times in a "
                f"row; giving up")
        if on_reconnect is not None:
            on_reconnect(delay, failures)
        sleep(delay)
        delay = min(delay * 2, max_backoff_s)


def replay_snapshot(dump_path: str) -> Optional[Dict[str, Any]]:
    """The final live snapshot embedded in a flight-recorder dump."""
    from repro.observability.flight import load_flight_dump

    dump = load_flight_dump(dump_path)
    return dump.get("snapshot")


def run_top(endpoint: str, interval: float = 0.5) -> int:
    """The interactive curses loop ('q' quits). Returns an exit code."""
    import curses

    def _loop(screen: Any) -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval * 1000))
        last_alert: Optional[Dict[str, Any]] = None
        # fail_fast: a dashboard pointed at a dead endpoint should say
        # so immediately, not spin through the whole backoff ladder.
        for snapshot in stream_snapshots_reconnect(endpoint,
                                                   fail_fast=True):
            if snapshot.get("kind") == "alert":
                # Alerts arrive between snapshots; remember the newest
                # and show it with the next redraw instead of tearing
                # the layout apart mid-frame.
                last_alert = snapshot
                continue
            height, width = screen.getmaxyx()
            screen.erase()
            lines = render_top(snapshot, width - 1)
            if last_alert is not None:
                lines.append(
                    f"alert  {last_alert.get('state', '?')} "
                    f"{last_alert.get('objective', '?')} "
                    f"[{last_alert.get('window', '?')}] "
                    f"burn={last_alert.get('burn_rate', 0.0):.1f}"[:width - 1])
            for row, line in enumerate(lines):
                if row >= height - 1:
                    break
                screen.addstr(row, 0, line)
            screen.refresh()
            if screen.getch() in (ord("q"), ord("Q")):
                return

    curses.wrapper(_loop)
    return 0
