"""Mid-flight snapshots of a running query and their Prometheus view.

The live observability plane is pull-shaped: on every sampler tick the
*engine thread* assembles a plain-data :func:`build_live_snapshot` dict
— per-fragment progress and throughput, queue depths, delivery rates,
memory occupancy, the stall-attribution breakdown (whose values sum
exactly to the stall time by construction) — and hands it to a
:class:`MetricsPublisher`.  HTTP threads (``/metrics``, ``/stream``,
``repro top``) only ever read the last published snapshot under the
publisher's lock, so a scrape is tear-free and costs the engine nothing.

:func:`live_prometheus_text` renders one snapshot in the Prometheus text
exposition format for live scraping (unlike
:func:`repro.observability.export.prometheus_text`, which renders a
finished run's virtual-time snapshot for offline ingestion).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: live snapshot layout version (part of the SSE/JSON payload).
LIVE_SNAPSHOT_VERSION = 1

#: frames a stream subscriber may lag behind before the oldest is dropped.
DEFAULT_SUBSCRIPTION_CAPACITY = 8


def build_live_snapshot(world: Any, runtime: Any, processor: Any,
                        strategy: str) -> Dict[str, Any]:
    """One JSON-safe snapshot of an in-flight execution.

    Called on the engine thread (sampler tick or final flush), so every
    runtime structure it reads is quiescent while it reads it.
    """
    sim = world.sim
    now = sim.now
    # Name-sorted, matching the order the Prometheus exposition emits the
    # per-cause series in: a scraper re-summing the series in document
    # order reproduces stall_time bit-for-bit (float addition is
    # order-sensitive).
    stalls = dict(sorted(world.telemetry.stalls.by_cause().items()))
    fragments: List[Dict[str, Any]] = []
    for fragment in runtime.fragments.values():
        started = fragment.started_at
        busy = (now if fragment.finished_at is None
                else fragment.finished_at) - (started or 0.0)
        fragments.append({
            "name": fragment.name,
            "kind": fragment.kind.value,
            "chain": fragment.chain.name,
            "status": fragment.status.value,
            "tuples_in": fragment.tuples_in,
            "tuples_out": fragment.tuples_out,
            "batches": fragment.batches,
            "throughput": (fragment.tuples_out / busy
                           if started is not None and busy > 0 else 0.0),
        })
    queues: Dict[str, Dict[str, Any]] = {}
    for source, queue in world.cm.queues.items():
        rate = world.cm.estimators[source].delivery_rate
        queues[source] = {
            "tuples": queue.tuples_available,
            "messages": len(queue._messages),
            "rate": rate if rate is not None else 0.0,
        }
    return {
        "version": LIVE_SNAPSHOT_VERSION,
        "strategy": strategy,
        "now": now,
        "result_tuples": runtime.result_tuples,
        "batches": processor.batches_processed,
        "context_switches": processor.context_switches,
        # Summed from the same mapping that is exported per cause, so
        # the per-cause series sum to this total exactly.
        "stall_time": sum(stalls.values()),
        "stalls": stalls,
        "decisions": len(world.telemetry.audit),
        "samples": len(world.telemetry.samples),
        "memory": {
            "used": world.memory.used_bytes,
            "total": world.memory.total_bytes,
            "peak": world.memory.peak_bytes,
        },
        "fragments": fragments,
        "queues": queues,
    }


class SnapshotSubscription:
    """One bounded, drop-oldest frame queue hanging off a publisher.

    Created by :meth:`MetricsPublisher.subscribe`.  The publisher appends
    every published snapshot; when the queue is full the *oldest* frame
    is discarded (and counted) so a slow or stalled SSE client can never
    block the publishing thread or grow memory without bound.
    """

    def __init__(self, publisher: "MetricsPublisher", capacity: int) -> None:
        if capacity < 1:
            raise ValueError("subscription capacity must be >= 1")
        self._publisher = publisher
        self.capacity = capacity
        #: frames dropped from *this* subscription because it lagged.
        self.dropped = 0
        self._frames: Deque[Tuple[Dict[str, Any], int]] = deque()
        self._closed = False

    def pop(self, timeout: float) -> Tuple[Optional[Dict[str, Any]], int]:
        """Dequeue the next frame, waiting up to ``timeout`` seconds.

        Returns ``(snapshot, seq)``; the snapshot is None when the wait
        timed out or the publisher closed with nothing queued (check
        :attr:`finished` to tell the two apart).
        """
        cond = self._publisher._cond
        with cond:
            cond.wait_for(
                lambda: self._frames or self._publisher._closed
                or self._closed,
                timeout=timeout)
            if self._frames:
                return self._frames.popleft()
            return None, self._publisher._seq

    @property
    def finished(self) -> bool:
        """True once the publisher closed and every frame was consumed."""
        with self._publisher._cond:
            return ((self._publisher._closed or self._closed)
                    and not self._frames)

    def close(self) -> None:
        """Detach from the publisher (idempotent)."""
        with self._publisher._cond:
            self._closed = True
            self._publisher._subscriptions.discard(self)


class MetricsPublisher:
    """Single-slot, sequence-numbered snapshot exchange between threads.

    The engine thread :meth:`publish`-es; any number of reader threads
    :meth:`latest` (scrapes), :meth:`wait_newer` (polling), or
    :meth:`subscribe` (lossy-but-ordered SSE streams).  The published
    dict is treated as immutable by all parties.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._snapshot: Optional[Dict[str, Any]] = None
        self._seq = 0
        self._closed = False
        self._subscriptions: "set[SnapshotSubscription]" = set()
        #: frames dropped across all subscriptions (slow-client metric).
        self.dropped_total = 0

    def publish(self, snapshot: Dict[str, Any]) -> int:
        """Install a fresh snapshot; returns its sequence number."""
        with self._cond:
            self._seq += 1
            snapshot = dict(snapshot, seq=self._seq)
            self._snapshot = snapshot
            for subscription in self._subscriptions:
                if len(subscription._frames) >= subscription.capacity:
                    subscription._frames.popleft()
                    subscription.dropped += 1
                    self.dropped_total += 1
                subscription._frames.append((snapshot, self._seq))
            self._cond.notify_all()
            return self._seq

    def publish_event(self, frame: Dict[str, Any]) -> int:
        """Fan an out-of-band frame (e.g. an SLO alert) to subscribers.

        Unlike :meth:`publish` the frame does **not** replace the
        latest snapshot — ``/metrics`` scrapes and late subscribers
        must keep seeing a ``kind: service`` frame, not an alert.
        """
        with self._cond:
            self._seq += 1
            frame = dict(frame, seq=self._seq)
            for subscription in self._subscriptions:
                if len(subscription._frames) >= subscription.capacity:
                    subscription._frames.popleft()
                    subscription.dropped += 1
                    self.dropped_total += 1
                subscription._frames.append((frame, self._seq))
            self._cond.notify_all()
            return self._seq

    def subscribe(self, capacity: int = DEFAULT_SUBSCRIPTION_CAPACITY
                  ) -> SnapshotSubscription:
        """Register a bounded per-client frame queue.

        The latest snapshot (if any) is pre-queued so a late subscriber
        renders a frame without waiting for the next publish tick.
        """
        subscription = SnapshotSubscription(self, capacity)
        with self._cond:
            self._subscriptions.add(subscription)
            if self._snapshot is not None:
                subscription._frames.append((self._snapshot, self._seq))
        return subscription

    def close(self) -> None:
        """Wake streamers so they can observe the end of the run."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def latest(self) -> Tuple[Optional[Dict[str, Any]], int]:
        """The most recent snapshot (or None) and its sequence number."""
        with self._cond:
            return self._snapshot, self._seq

    def wait_newer(self, seq: int,
                   timeout: float) -> Tuple[Optional[Dict[str, Any]], int]:
        """Block up to ``timeout`` for a snapshot newer than ``seq``.

        Returns ``(snapshot, new_seq)``; the snapshot is None when the
        wait timed out or the publisher closed without a newer one.
        """
        with self._cond:
            self._cond.wait_for(lambda: self._seq > seq or self._closed,
                                timeout=timeout)
            if self._seq > seq:
                return self._snapshot, self._seq
            return None, self._seq


def _esc(label: str) -> str:
    return label.replace("\\", r"\\").replace('"', r'\"')


def live_prometheus_text(snapshot: Optional[Dict[str, Any]], *,
                         stream_dropped: Optional[int] = None) -> str:
    """Render one live snapshot in the Prometheus text format.

    Before the first sampler tick (``snapshot is None``) only
    ``repro_live_up`` is exposed, so a scrape racing engine start-up is
    still valid exposition text.  ``stream_dropped`` (when not None) adds
    the publisher-wide slow-SSE-client drop counter to the exposition.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str,
             samples: List[Tuple[str, Any]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for suffix, value in samples:
            lines.append(f"{name}{suffix} {float(value)!r}")

    emit("repro_live_up", "gauge",
         "1 while the live engine is publishing snapshots.",
         [("", 1.0 if snapshot is not None else 0.0)])
    if stream_dropped is not None:
        emit("repro_live_stream_dropped_frames_total", "counter",
             "SSE frames dropped because stream clients lagged.",
             [("", stream_dropped)])
    if snapshot is None:
        return "\n".join(lines) + "\n"

    emit("repro_live_snapshot_seq", "counter",
         "Sequence number of this snapshot.", [("", snapshot["seq"])])
    emit("repro_live_now_seconds", "gauge",
         "Wall-clock seconds since the run started.",
         [("", snapshot["now"])])
    emit("repro_live_result_tuples", "gauge",
         "Result tuples produced so far.", [("", snapshot["result_tuples"])])
    emit("repro_live_batches_total", "counter",
         "Batches the DQP has processed.", [("", snapshot["batches"])])
    emit("repro_live_context_switches_total", "counter",
         "Fragment-to-fragment switches charged.",
         [("", snapshot["context_switches"])])
    emit("repro_live_decisions_total", "counter",
         "Scheduler decisions recorded so far.",
         [("", snapshot["decisions"])])
    emit("repro_live_stall_time_seconds", "gauge",
         "Engine idle time so far; the per-cause series sum to this.",
         [("", snapshot["stall_time"])])
    emit("repro_live_stall_seconds_total", "counter",
         "Engine idle time by attributed cause.",
         [(f'{{cause="{_esc(cause)}"}}', seconds)
          for cause, seconds in sorted(snapshot["stalls"].items())])
    memory = snapshot["memory"]
    emit("repro_live_memory_used_bytes", "gauge",
         "Query memory in use.", [("", memory["used"])])
    emit("repro_live_memory_total_bytes", "gauge",
         "Query memory budget.", [("", memory["total"])])
    emit("repro_live_memory_peak_bytes", "gauge",
         "Peak query memory so far.", [("", memory["peak"])])

    fragments = sorted(snapshot["fragments"], key=lambda f: f["name"])
    for field, kind, help_text in (
            ("tuples_in", "counter", "Tuples consumed per fragment."),
            ("tuples_out", "counter", "Tuples produced per fragment."),
            ("batches", "counter", "Batches processed per fragment."),
            ("throughput", "gauge",
             "Output tuples per active second, per fragment.")):
        suffix = "_total" if kind == "counter" else "_tuples_per_second"
        emit(f"repro_live_fragment_{field}{suffix}", kind, help_text,
             [(f'{{fragment="{_esc(f["name"])}",kind="{_esc(f["kind"])}"}}',
               f[field]) for f in fragments])

    sources = sorted(snapshot["queues"].items())
    emit("repro_live_queue_depth_tuples", "gauge",
         "Tuples buffered per source queue.",
         [(f'{{source="{_esc(source)}"}}', queue["tuples"])
          for source, queue in sources])
    emit("repro_live_queue_depth_messages", "gauge",
         "Messages buffered per source queue.",
         [(f'{{source="{_esc(source)}"}}', queue["messages"])
          for source, queue in sources])
    emit("repro_live_source_rate_tuples_per_second", "gauge",
         "Estimated delivery rate per source.",
         [(f'{{source="{_esc(source)}"}}', queue["rate"])
          for source, queue in sources])
    return "\n".join(lines) + "\n"
