"""Compiled observability hook tables for the scheduling hot paths.

Before this module, each observability plane added its own per-batch
conditional to the DQP loop: a ``NULL_METRIC`` method call for the
counter and the histogram, an ``is not None`` check for the flight
recorder — and the batches/second high-water mark eroded with every
plane.  The hook table inverts that: when a :class:`~repro.observability.
telemetry.Telemetry` facade is compiled, every *active* channel
(metrics registry, flight recorder, span recorder) contributes one
pre-bound callable per hook point, and the hot loop does

.. code-block:: python

    if batch_hooks:               # () when everything is off
        for hook in batch_hooks:
            hook(started, now, fragment, tuples)

so the fully-disabled path pays exactly one truthiness check per batch
— no method calls, no attribute chains, no null objects.  The table is
compiled once per processor/scheduler and refreshed at each
``execute(sp)`` entry (once per scheduling plan), so late channel
attachment is picked up at the next phase boundary for free.

Hook signatures:

* ``batch(started, now, fragment, tuples)`` — one processed batch;
* ``switch(now, fragment)`` — one charged context switch;
* ``stall(started, ended, cause)`` — one attributed stall interval;
* ``plan(now, plan_size)`` — one completed planning phase (DQS).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.observability.flight import ENTRY_BATCH
from repro.observability.registry import BATCH_BUCKETS
from repro.observability.spans import SPAN_BATCH, SPAN_STALL

BatchHook = Callable[[float, float, Any, int], None]
SwitchHook = Callable[[float, Any], None]
StallHook = Callable[[float, float, str], None]
PlanHook = Callable[[float, int], None]

#: the shared no-op hook tuple: falsy, so hot loops skip dispatch whole.
NO_HOOKS: Tuple[Any, ...] = ()


class DQPHooks:
    """One compiled dispatch table: pre-bound method slots per hook point."""

    __slots__ = ("batch", "switch", "stall", "plan")

    def __init__(self,
                 batch: Tuple[BatchHook, ...] = NO_HOOKS,
                 switch: Tuple[SwitchHook, ...] = NO_HOOKS,
                 stall: Tuple[StallHook, ...] = NO_HOOKS,
                 plan: Tuple[PlanHook, ...] = NO_HOOKS):
        self.batch = batch
        self.switch = switch
        self.stall = stall
        self.plan = plan

    @property
    def enabled(self) -> bool:
        return bool(self.batch or self.switch or self.stall or self.plan)

    def __repr__(self) -> str:
        return (f"DQPHooks(batch={len(self.batch)}, "
                f"switch={len(self.switch)}, stall={len(self.stall)}, "
                f"plan={len(self.plan)})")


#: the shared null table components compiled when everything is off.
NULL_HOOKS = DQPHooks()


def compile_dqp_hooks(
        telemetry: Any,
        phase_span_of: Optional[Callable[[], Optional[int]]] = None,
) -> DQPHooks:
    """Compile the hook table for one processor/scheduler.

    ``phase_span_of`` supplies the current execution-phase span id at
    call time (the DQO rebinds it per phase), so batch and stall spans
    land under the right parent even when several queries interleave on
    one shared recorder.
    """
    batch: list = []
    switch: list = []
    stall: list = []
    plan: list = []

    registry = telemetry.registry
    if getattr(registry, "enabled", False):
        batches_metric = registry.counter(
            "dqp.batches", "Batches the DQP processed.")
        batch_tuples_metric = registry.histogram(
            "dqp.batch_tuples", buckets=BATCH_BUCKETS,
            help="Tuples actually consumed per batch.")
        switch_metric = registry.counter(
            "dqp.context_switches", "Fragment-to-fragment switches charged.")
        stall_metric = registry.histogram(
            "dqp.stall_seconds", help="Duration of individual DQP stalls.")
        phases_metric = registry.counter(
            "dqs.planning_phases", "Planning phases executed.")
        plan_size_metric = registry.gauge(
            "dqs.plan_fragments", "Fragments admitted into the current plan.")

        def metrics_batch(started: float, now: float, fragment: Any,
                          tuples: int) -> None:
            batches_metric.inc()
            batch_tuples_metric.observe(tuples)

        def metrics_stall(started: float, ended: float, cause: str) -> None:
            stall_metric.observe(ended - started)

        def metrics_plan(now: float, plan_size: int) -> None:
            phases_metric.inc()
            plan_size_metric.set(plan_size)

        batch.append(metrics_batch)
        switch.append(lambda now, fragment: switch_metric.inc())
        stall.append(metrics_stall)
        plan.append(metrics_plan)

    flight = telemetry.flight
    if flight is not None:
        def flight_batch(started: float, now: float, fragment: Any,
                         tuples: int) -> None:
            flight.record(ENTRY_BATCH, now, fragment=fragment.name,
                          tuples=tuples)

        batch.append(flight_batch)
        # Stall and decision entries reach the flight recorder through
        # the ``stalls.on_record`` / ``audit.on_record`` observers the
        # live engine installs; only the per-batch path rides the table.

    spans = getattr(telemetry, "spans", None)
    if spans is not None:
        current_phase = phase_span_of if phase_span_of is not None \
            else (lambda: None)

        def span_batch(started: float, now: float, fragment: Any,
                       tuples: int) -> None:
            spans.add(SPAN_BATCH, fragment.name, started, now,
                      parent_id=current_phase(),
                      fragment_kind=fragment.kind.value, tuples=tuples)

        def span_stall(started: float, ended: float, cause: str) -> None:
            spans.add(SPAN_STALL, cause, started, ended,
                      parent_id=current_phase(), cause=cause)

        batch.append(span_batch)
        stall.append(span_stall)

    if not (batch or switch or stall or plan):
        return NULL_HOOKS
    return DQPHooks(batch=tuple(batch), switch=tuple(switch),
                    stall=tuple(stall), plan=tuple(plan))
