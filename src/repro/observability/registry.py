"""The metrics registry: named counters, gauges and histograms.

Every runtime component registers the quantities it tracks into one
:class:`MetricsRegistry` per simulated machine (``world.telemetry``).
The registry is virtual-time-aware — gauges keep a time-weighted mean
via :class:`repro.sim.stats.TimeWeightedStat`, histograms a streaming
mean/variance via :class:`repro.sim.stats.WelfordStat` — and a
*disabled* registry is a near-no-op: every factory returns the shared
:data:`NULL_METRIC`, whose methods do nothing, so instrumented hot paths
cost one no-op call when telemetry is off.
"""

from __future__ import annotations

import bisect
from typing import Any, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.exec import Kernel
from repro.sim.stats import Counter, TimeWeightedStat, WelfordStat

#: default histogram buckets for virtual-time durations (seconds).
DURATION_BUCKETS_S = (1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)
#: default histogram buckets for batch sizes (tuples).
BATCH_BUCKETS = (64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)


class NullMetric:
    """Shared sink returned by a disabled registry; every method no-ops."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: the singleton handed out by disabled registries.
NULL_METRIC = NullMetric()


class CounterMetric:
    """A named, monotonically growing tally."""

    kind = "counter"
    __slots__ = ("name", "help", "_counter")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._counter = Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._counter.add(amount)

    @property
    def value(self) -> float:
        return self._counter.value

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"CounterMetric({self.name!r}, {self.value})"


class GaugeMetric:
    """A named value that can go up and down.

    With a simulator attached the gauge also tracks the time-weighted
    mean of the (piecewise-constant) signal.
    """

    kind = "gauge"
    __slots__ = ("name", "help", "value", "minimum", "maximum", "_weighted")

    def __init__(self, name: str, help: str = "",
                 sim: Optional[Kernel] = None):
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._weighted = TimeWeightedStat(sim) if sim is not None else None

    def set(self, value: float) -> None:
        self.value = value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        if self._weighted is not None:
            self._weighted.record(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def time_weighted_mean(self) -> Optional[float]:
        """Time-weighted mean of the signal (None without a simulator)."""
        return self._weighted.mean() if self._weighted is not None else None

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value,
                "min": self.minimum, "max": self.maximum,
                "time_weighted_mean": self.time_weighted_mean()}

    def __repr__(self) -> str:
        return f"GaugeMetric({self.name!r}, {self.value})"


class HistogramMetric:
    """A fixed-bucket histogram (Prometheus-style cumulative export).

    ``buckets`` are the finite upper bounds; one implicit ``+Inf``
    overflow bucket is always present.  Alongside the bucket counts the
    histogram keeps a streaming mean/min/max so exports do not need the
    raw observations.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "_stream")

    def __init__(self, name: str, buckets: Sequence[float], help: str = ""):
        if not buckets:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        ordered = tuple(sorted(float(b) for b in buckets))
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError(f"histogram {name!r} has duplicate buckets")
        self.name = name
        self.help = help
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # last one is +Inf
        self.sum = 0.0
        self._stream = WelfordStat()

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self._stream.record(value)

    @property
    def count(self) -> int:
        return self._stream.count

    @property
    def mean(self) -> float:
        return self._stream.mean

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "buckets": list(self.buckets),
                "counts": list(self.counts), "sum": self.sum,
                "count": self.count, "mean": self.mean,
                "min": self._stream.minimum, "max": self._stream.maximum}

    def __repr__(self) -> str:
        return f"HistogramMetric({self.name!r}, n={self.count})"


Metric = "CounterMetric | GaugeMetric | HistogramMetric"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Components call :meth:`counter` / :meth:`gauge` / :meth:`histogram`
    once (usually at construction) and keep the returned handle; repeated
    calls with the same name return the same metric, and a kind mismatch
    is a configuration error.  A disabled registry hands out
    :data:`NULL_METRIC` and records nothing.
    """

    def __init__(self, sim: Optional[Kernel] = None, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self._metrics: dict[str, Any] = {}

    # -- factories ---------------------------------------------------------
    def counter(self, name: str, help: str = "") -> "CounterMetric | NullMetric":
        if not self.enabled:
            return NULL_METRIC
        return self._get_or_create(name, CounterMetric,
                                   lambda: CounterMetric(name, help))

    def gauge(self, name: str, help: str = "") -> "GaugeMetric | NullMetric":
        if not self.enabled:
            return NULL_METRIC
        return self._get_or_create(name, GaugeMetric,
                                   lambda: GaugeMetric(name, help, sim=self.sim))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DURATION_BUCKETS_S,
                  help: str = "") -> "HistogramMetric | NullMetric":
        if not self.enabled:
            return NULL_METRIC
        return self._get_or_create(name, HistogramMetric,
                                   lambda: HistogramMetric(name, buckets, help))

    def _get_or_create(self, name, expected_type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, expected_type):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- inspection --------------------------------------------------------
    def get(self, name: str) -> Optional[Any]:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every metric, keyed by name (sorted)."""
        return {name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)}

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self._metrics)} metrics, {state})"


#: shared disabled registry for components constructed without telemetry.
NULL_REGISTRY = MetricsRegistry(enabled=False)
