"""The metrics registry: named counters, gauges and histograms.

Every runtime component registers the quantities it tracks into one
:class:`MetricsRegistry` per simulated machine (``world.telemetry``).
The registry is virtual-time-aware — gauges keep a time-weighted mean
via :class:`repro.sim.stats.TimeWeightedStat`, histograms a streaming
mean/variance via :class:`repro.sim.stats.WelfordStat` — and a
*disabled* registry is a near-no-op: every factory returns the shared
:data:`NULL_METRIC`, whose methods do nothing, so instrumented hot paths
cost one no-op call when telemetry is off.

Thread-safety: every metric of one registry shares the registry's
re-entrant lock, and :meth:`MetricsRegistry.as_dict` snapshots under
that same lock — an exporter thread (the live ``/metrics`` endpoint)
never sees a histogram whose ``counts`` and ``count`` disagree, even
while the engine thread is mutating.  On the wall-clock backend this is
what makes Prometheus/JSON/CSV exports tear-free; on the virtual-time
backend everything runs on one thread and the uncontended lock is noise.

Serialization: :meth:`MetricsRegistry.as_dict` is a plain-data snapshot,
:meth:`MetricsRegistry.from_snapshot` rebuilds a registry from one (so
pool workers can ship their metrics to the sweep parent), and
:meth:`MetricsRegistry.merge` folds another registry or snapshot in —
counters and histograms add, gauges keep their extremes.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Optional, Sequence, Type, Union

from repro.common.errors import ConfigurationError
from repro.exec import Kernel
from repro.sim.stats import Counter, TimeWeightedStat, WelfordStat

#: default histogram buckets for virtual-time durations (seconds).
DURATION_BUCKETS_S = (1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)
#: default histogram buckets for batch sizes (tuples).
BATCH_BUCKETS = (64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0)


class NullMetric:
    """Shared sink returned by a disabled registry; every method no-ops."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: the singleton handed out by disabled registries.
NULL_METRIC = NullMetric()


class CounterMetric:
    """A named, monotonically growing tally."""

    kind = "counter"
    __slots__ = ("name", "help", "_counter", "_lock")

    def __init__(self, name: str, help: str = "",
                 lock: Optional[threading.RLock] = None):
        self.name = name
        self.help = help
        self._counter = Counter()
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._counter.add(amount)

    @property
    def value(self) -> float:
        return self._counter.value

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"kind": self.kind, "value": self.value}

    def _merge(self, data: Dict[str, Any]) -> None:
        self.inc(data["value"])

    def __repr__(self) -> str:
        return f"CounterMetric({self.name!r}, {self.value})"


class GaugeMetric:
    """A named value that can go up and down.

    With a simulator attached the gauge also tracks the time-weighted
    mean of the (piecewise-constant) signal.
    """

    kind = "gauge"
    __slots__ = ("name", "help", "value", "minimum", "maximum", "_weighted",
                 "_restored_mean", "_lock")

    def __init__(self, name: str, help: str = "",
                 sim: Optional[Kernel] = None,
                 lock: Optional[threading.RLock] = None):
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._weighted = TimeWeightedStat(sim) if sim is not None else None
        #: time-weighted mean carried over by :meth:`_restore` (a restored
        #: registry has no simulator to keep weighting against).
        self._restored_mean: Optional[float] = None
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.minimum = (value if self.minimum is None
                            else min(self.minimum, value))
            self.maximum = (value if self.maximum is None
                            else max(self.maximum, value))
            if self._weighted is not None:
                self._weighted.record(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def time_weighted_mean(self) -> Optional[float]:
        """Time-weighted mean of the signal (None without a simulator)."""
        if self._weighted is not None:
            return self._weighted.mean()
        return self._restored_mean

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"kind": self.kind, "value": self.value,
                    "min": self.minimum, "max": self.maximum,
                    "time_weighted_mean": self.time_weighted_mean()}

    def _restore(self, data: Dict[str, Any]) -> None:
        self.value = data["value"]
        self.minimum = data["min"]
        self.maximum = data["max"]
        self._restored_mean = data.get("time_weighted_mean")

    def _merge(self, data: Dict[str, Any]) -> None:
        # Gauges from independent runs have no common timeline: keep the
        # extremes, let `value` track the largest observed level, and drop
        # the (unmergeable) time-weighted mean.
        with self._lock:
            self.value = max(self.value, data["value"])
            for other in (data["min"],):
                if other is not None:
                    self.minimum = (other if self.minimum is None
                                    else min(self.minimum, other))
            for other in (data["max"],):
                if other is not None:
                    self.maximum = (other if self.maximum is None
                                    else max(self.maximum, other))
            self._restored_mean = None

    def __repr__(self) -> str:
        return f"GaugeMetric({self.name!r}, {self.value})"


class HistogramMetric:
    """A fixed-bucket histogram (Prometheus-style cumulative export).

    ``buckets`` are the finite upper bounds; one implicit ``+Inf``
    overflow bucket is always present.  Alongside the bucket counts the
    histogram keeps a streaming mean/min/max so exports do not need the
    raw observations.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "_stream",
                 "_lock")

    def __init__(self, name: str, buckets: Sequence[float], help: str = "",
                 lock: Optional[threading.RLock] = None):
        if not buckets:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        ordered = tuple(sorted(float(b) for b in buckets))
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError(f"histogram {name!r} has duplicate buckets")
        self.name = name
        self.help = help
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # last one is +Inf
        self.sum = 0.0
        self._stream = WelfordStat()
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.sum += value
            self._stream.record(value)

    @property
    def count(self) -> int:
        return self._stream.count

    @property
    def mean(self) -> float:
        return self._stream.mean

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"kind": self.kind, "buckets": list(self.buckets),
                    "counts": list(self.counts), "sum": self.sum,
                    "count": self.count, "mean": self.mean,
                    "min": self._stream.minimum, "max": self._stream.maximum}

    def _restore(self, data: Dict[str, Any]) -> None:
        self.counts = list(data["counts"])
        self.sum = data["sum"]
        # The streaming variance (m2) is not part of the snapshot — no
        # exporter exposes it — so a restored histogram keeps count /
        # mean / min / max and reports zero variance.
        self._stream.count = data["count"]
        self._stream._mean = data["mean"]
        self._stream.minimum = data["min"]
        self._stream.maximum = data["max"]

    def _merge(self, data: Dict[str, Any]) -> None:
        with self._lock:
            if list(data["buckets"]) != list(self.buckets):
                raise ConfigurationError(
                    f"cannot merge histogram {self.name!r}: bucket layouts "
                    f"differ ({data['buckets']} vs {list(self.buckets)})")
            for i, count in enumerate(data["counts"]):
                self.counts[i] += count
            self.sum += data["sum"]
            ours, theirs = self._stream.count, data["count"]
            if theirs:
                total = ours + theirs
                self._stream._mean = ((self._stream._mean * ours
                                       + data["mean"] * theirs) / total)
                self._stream.count = total
            for other in (data["min"],):
                if other is not None:
                    self._stream.minimum = (
                        other if self._stream.minimum is None
                        else min(self._stream.minimum, other))
            for other in (data["max"],):
                if other is not None:
                    self._stream.maximum = (
                        other if self._stream.maximum is None
                        else max(self._stream.maximum, other))

    def __repr__(self) -> str:
        return f"HistogramMetric({self.name!r}, n={self.count})"


Metric = Union[CounterMetric, GaugeMetric, HistogramMetric]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Components call :meth:`counter` / :meth:`gauge` / :meth:`histogram`
    once (usually at construction) and keep the returned handle; repeated
    calls with the same name return the same metric, and a kind mismatch
    is a configuration error.  A disabled registry hands out
    :data:`NULL_METRIC` and records nothing.
    """

    def __init__(self, sim: Optional[Kernel] = None, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}
        #: shared by every metric of this registry; :meth:`as_dict` holds
        #: it for the whole snapshot, making exports tear-free.
        self._lock = threading.RLock()

    # -- factories ---------------------------------------------------------
    def counter(self, name: str,
                help: str = "") -> Union[CounterMetric, NullMetric]:
        if not self.enabled:
            return NULL_METRIC
        return self._get_or_create(
            name, CounterMetric,
            lambda: CounterMetric(name, help, lock=self._lock))

    def gauge(self, name: str,
              help: str = "") -> Union[GaugeMetric, NullMetric]:
        if not self.enabled:
            return NULL_METRIC
        return self._get_or_create(
            name, GaugeMetric,
            lambda: GaugeMetric(name, help, sim=self.sim, lock=self._lock))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DURATION_BUCKETS_S,
                  help: str = "") -> Union[HistogramMetric, NullMetric]:
        if not self.enabled:
            return NULL_METRIC
        return self._get_or_create(
            name, HistogramMetric,
            lambda: HistogramMetric(name, buckets, help, lock=self._lock))

    def _get_or_create(self, name: str, expected_type: Type[Any],
                       factory: Callable[[], Any]) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected_type):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    # -- inspection --------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot of every metric, keyed by name (sorted).

        Taken under the registry lock: no metric mutates mid-snapshot,
        so cross-metric invariants hold in the exported view.
        """
        with self._lock:
            return {name: self._metrics[name].as_dict()
                    for name in sorted(self._metrics)}

    # -- serialization / aggregation ---------------------------------------
    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Dict[str, Any]],
                      sim: Optional[Kernel] = None) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot.

        Used when pool workers ship their per-run metrics to the sweep
        parent: every exported field round-trips (the histogram variance,
        which no exporter exposes, does not).
        """
        registry = cls(sim=sim, enabled=True)
        registry.merge(snapshot)
        return registry

    def merge(self, other: Union["MetricsRegistry",
                                 Dict[str, Dict[str, Any]]]) -> None:
        """Fold another registry (or an :meth:`as_dict` snapshot) in.

        Counters and histograms add; gauges keep their extremes and the
        largest observed ``value``; kind mismatches raise.
        """
        snapshot = other.as_dict() if isinstance(other, MetricsRegistry) \
            else other
        with self._lock:
            for name, data in snapshot.items():
                kind = data["kind"]
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._create_for_merge(name, data)
                    self._metrics[name] = metric
                    if kind == "counter":
                        metric._merge(data)
                elif metric.kind != kind:
                    raise ConfigurationError(
                        f"cannot merge metric {name!r}: kind {kind} into "
                        f"{metric.kind}")
                else:
                    metric._merge(data)

    def _create_for_merge(self, name: str, data: Dict[str, Any]) -> Metric:
        kind = data["kind"]
        if kind == "counter":
            return CounterMetric(name, lock=self._lock)
        if kind == "gauge":
            gauge = GaugeMetric(name, lock=self._lock)
            gauge._restore(data)
            return gauge
        if kind == "histogram":
            histogram = HistogramMetric(name, data["buckets"],
                                        lock=self._lock)
            histogram._restore(data)
            return histogram
        raise ConfigurationError(f"unknown metric kind {kind!r} for {name!r}")

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({len(self._metrics)} metrics, {state})"


#: shared disabled registry for components constructed without telemetry.
NULL_REGISTRY = MetricsRegistry(enabled=False)
