"""Telemetry exporters: JSON, CSV and Prometheus-style text.

All three formats render the same *snapshot* — a plain-data dict built
by :func:`telemetry_snapshot` from an :class:`ExecutionResult` — so the
JSON export round-trips exactly: ``load_metrics_json(path)`` returns the
snapshot that was written.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import Any, Union

from repro.common.errors import ConfigurationError

#: snapshot format version, bumped on incompatible layout changes.
SNAPSHOT_VERSION = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def telemetry_snapshot(result: Any) -> dict[str, Any]:
    """Plain-data snapshot of one execution's telemetry.

    ``result`` is an :class:`~repro.core.engine.ExecutionResult`; the
    snapshot contains only JSON-native types (dict/list/str/number/None)
    so every exporter — and the JSON round-trip — sees the same values.
    """
    metrics = result.metrics.as_dict() if result.metrics is not None else {}
    return {
        "version": SNAPSHOT_VERSION,
        "strategy": result.strategy,
        "response_time": result.response_time,
        "result_tuples": result.result_tuples,
        "stall_time": result.stall_time,
        "stall_breakdown": dict(result.stall_breakdown),
        "decisions": [record.to_dict() for record in result.decisions],
        "samples": [sample.to_dict() for sample in result.samples],
        "metrics": metrics,
    }


# -- JSON -------------------------------------------------------------------
def write_metrics_json(snapshot: dict[str, Any],
                       path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_metrics_json(path: Union[str, Path]) -> dict[str, Any]:
    """Load a snapshot written by :func:`write_metrics_json`.

    Raises :class:`ConfigurationError` on a missing, truncated or alien
    file, so callers (the CLI) can fail with one friendly line.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"metrics export not found: {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable metrics export {path}: {exc}")
    if not isinstance(data, dict) or "metrics" not in data \
            or "strategy" not in data:
        raise ConfigurationError(
            f"{path} is not a metrics export written by `repro metrics`")
    return data


# -- CSV --------------------------------------------------------------------
def write_metrics_csv(snapshot: dict[str, Any],
                      path: Union[str, Path]) -> Path:
    """Tidy-format CSV: one ``section,name,field,value`` row per scalar."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["section", "name", "field", "value"])
        writer.writerow(["run", "strategy", "value", snapshot["strategy"]])
        writer.writerow(["run", "response_time", "seconds",
                         snapshot["response_time"]])
        writer.writerow(["run", "stall_time", "seconds",
                         snapshot["stall_time"]])
        for cause, seconds in sorted(snapshot["stall_breakdown"].items()):
            writer.writerow(["stall", cause, "seconds", seconds])
        for name, data in sorted(snapshot["metrics"].items()):
            for key, value in sorted(data.items()):
                if key in ("kind", "buckets", "counts"):
                    continue
                writer.writerow(["metric", name, key, value])
        for record in snapshot["decisions"]:
            writer.writerow(["decision", record["kind"], "subject",
                             record["subject"]])
            writer.writerow(["decision", record["kind"], "time",
                             record["time"]])
    return path


# -- Prometheus-style text --------------------------------------------------
def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(snapshot: dict[str, Any]) -> str:
    """Render the snapshot in the Prometheus text exposition format.

    Times are *virtual* seconds — the exposition is for offline
    inspection and dashboard ingestion, not live scraping.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, help_text: str,
             samples: list[tuple[str, Any]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for suffix, value in samples:
            lines.append(f"{name}{suffix} {_prom_number(value)}")

    emit("repro_response_time_seconds", "gauge",
         "Query response time (virtual seconds).",
         [("", snapshot["response_time"])])
    emit("repro_stall_seconds_total", "counter",
         "Engine idle time by attributed cause (virtual seconds).",
         [(f'{{cause="{cause}"}}', seconds)
          for cause, seconds in sorted(snapshot["stall_breakdown"].items())])
    kinds: dict[str, int] = {}
    for record in snapshot["decisions"]:
        kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
    emit("repro_decisions_total", "counter",
         "Scheduler decisions recorded in the audit log.",
         [(f'{{kind="{kind}"}}', count)
          for kind, count in sorted(kinds.items())])

    for name, data in sorted(snapshot["metrics"].items()):
        prom = _prom_name(name)
        if data["kind"] == "counter":
            emit(prom, "counter", f"Counter {name}.", [("", data["value"])])
        elif data["kind"] == "gauge":
            emit(prom, "gauge", f"Gauge {name}.", [("", data["value"])])
        elif data["kind"] == "histogram":
            samples: list[tuple[str, Any]] = []
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                samples.append((f'_bucket{{le="{_prom_number(bound)}"}}',
                                cumulative))
            samples.append(('_bucket{le="+Inf"}', data["count"]))
            samples.append(("_sum", data["sum"]))
            samples.append(("_count", data["count"]))
            emit(prom, "histogram", f"Histogram {name}.", samples)
    return "\n".join(lines) + "\n"


def write_metrics_prometheus(snapshot: dict[str, Any],
                             path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(snapshot), encoding="utf-8")
    return path
