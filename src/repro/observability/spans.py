"""Causal span tracing: one tree of timed spans per query.

Where the flight recorder keeps *the last N moments* of a live run, the
span recorder keeps the *whole causal structure* of one execution: the
query span at the root, planning and execution phases below it, fragment
lifecycles (PC / MF / CF / continuation), and — at the leaves — the
individual scheduling batches and attributed stall intervals the DQP
processed.  Besides the parent/child containment links, spans carry an
optional **caused-by** edge pointing at the event that triggered them: a
replanning phase caused by a lease grow, a query span caused by the
admission wait that delayed its launch.

Recording is pure bookkeeping — a list append stamped with the kernel
clock (:attr:`Kernel.now`), never a scheduled event, an RNG draw, or a
lock — so it works identically on the virtual-time and asyncio
wall-clock backends and cannot perturb event order: a seeded run is
bit-identical with spans on or off.  The hot paths reach the recorder
through the compiled hook table in :mod:`repro.observability.hooks`, so
a disabled recorder costs the DQP batch loop nothing but one truthiness
check.

Exports: :meth:`SpanRecorder.to_payload` (JSON, versioned) and
:func:`span_trace_events` (``chrome://tracing``); :meth:`write_json`
writes both, mirroring the flight recorder's dump convention.  The
critical-path analyzer over these spans lives in
:mod:`repro.observability.explain`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.errors import ConfigurationError

#: bumped on incompatible span-export layout changes.
SPANS_VERSION = 1

#: span kinds the runtime records.
SPAN_QUERY = "query"                    #: one query, submit to EndOfQEP
SPAN_PLANNING = "planning"              #: one DQS planning phase
SPAN_EXEC_PHASE = "exec-phase"          #: one DQP execution phase
SPAN_FRAGMENT = "fragment"              #: one fragment, first batch to done
SPAN_BATCH = "batch"                    #: one DQP scheduling batch
SPAN_STALL = "stall"                    #: one attributed DQP stall interval
SPAN_ADMISSION_WAIT = "admission-wait"  #: queued at the admission controller
SPAN_LEASE_GROW = "lease-grow"          #: broker grew the query's lease
SPAN_BUDGET_REPLAN = "budget-replan"    #: replanning forced by a BudgetGrow
SPAN_RATE_REPLAN = "rate-replan"        #: replanning forced by a RateChange

_SECONDS_TO_US = 1e6


@dataclass
class Span:
    """One timed interval in the causal tree.

    ``end`` is ``None`` while the span is open (and for instant spans
    that were never finished — exports clamp those to the last known
    time).  ``caused_by`` names the span that *triggered* this one,
    which is distinct from the ``parent_id`` containment edge.
    """

    span_id: int
    kind: str
    name: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    caused_by: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id, "kind": self.kind, "name": self.name,
            "start": self.start, "end": self.end,
            "parent_id": self.parent_id, "caused_by": self.caused_by,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(span_id=data["span_id"], kind=data["kind"],
                   name=data["name"], start=data["start"], end=data["end"],
                   parent_id=data.get("parent_id"),
                   caused_by=data.get("caused_by"),
                   attrs=dict(data.get("attrs", {})))


class SpanRecorder:
    """Records the span tree of one (or several co-located) queries.

    The recorder is bound to a kernel for its clock only; it never
    schedules anything.  Span ids are assigned in recording order, so a
    deterministic simulation produces a deterministic span list.
    """

    def __init__(self, sim: Any):
        self.sim = sim
        self.spans: List[Span] = []
        self._last_of_kind: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------
    def _append(self, kind: str, name: str, start: float,
                end: Optional[float], parent_id: Optional[int],
                caused_by: Optional[int], attrs: Dict[str, Any]) -> int:
        span_id = len(self.spans)
        self.spans.append(Span(span_id=span_id, kind=kind, name=name,
                               start=start, end=end, parent_id=parent_id,
                               caused_by=caused_by, attrs=attrs))
        self._last_of_kind[kind] = span_id
        return span_id

    def begin(self, kind: str, name: str, parent_id: Optional[int] = None,
              caused_by: Optional[int] = None, **attrs: Any) -> int:
        """Open a span at the current kernel time; returns its id."""
        return self._append(kind, name, self.sim.now, None, parent_id,
                            caused_by, attrs)

    def finish(self, span_id: int, **attrs: Any) -> None:
        """Close an open span at the current kernel time."""
        span = self.spans[span_id]
        span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)

    def add(self, kind: str, name: str, start: float, end: float,
            parent_id: Optional[int] = None, caused_by: Optional[int] = None,
            **attrs: Any) -> int:
        """Record a finished interval retrospectively (batches, stalls)."""
        return self._append(kind, name, start, end, parent_id, caused_by,
                            attrs)

    def instant(self, kind: str, name: str, parent_id: Optional[int] = None,
                caused_by: Optional[int] = None, **attrs: Any) -> int:
        """Record a zero-length marker span at the current kernel time."""
        now = self.sim.now
        return self._append(kind, name, now, now, parent_id, caused_by, attrs)

    def set_cause(self, span_id: int, caused_by: Optional[int]) -> None:
        """Attach a caused-by edge after the fact (admission → query)."""
        self.spans[span_id].caused_by = caused_by

    def last(self, kind: str) -> Optional[int]:
        """Id of the most recently recorded span of ``kind``, if any."""
        return self._last_of_kind.get(kind)

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def by_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def children(self, span_id: int) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def roots(self) -> List[Span]:
        """Top-level spans (normally the query spans)."""
        return [span for span in self.spans if span.parent_id is None]

    # -- export ------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The JSON-ready export (loadable via :func:`load_spans`)."""
        return {
            "version": SPANS_VERSION,
            "clock": "kernel-seconds",
            "spans": [span.to_dict() for span in self.spans],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        """Write the JSON export plus a ``.trace.json`` chrome sibling."""
        return write_spans_json(self.spans, path)

    def __repr__(self) -> str:
        return f"SpanRecorder({len(self.spans)} spans)"


def write_spans_json(spans: List[Span],
                     path: Union[str, Path]) -> Path:
    """Write a span list as the JSON export plus its chrome sibling.

    Works on a live recorder's spans or a list rebuilt from a payload
    (``repro run --spans-out`` exports the result's shipped span list).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": SPANS_VERSION,
        "clock": "kernel-seconds",
        "spans": [span.to_dict() for span in spans],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    trace_path = path.with_suffix(".trace.json")
    trace_path.write_text(
        json.dumps({"traceEvents": span_trace_events(spans),
                    "displayTimeUnit": "ms"}) + "\n",
        encoding="utf-8")
    return path


def load_spans(path: Union[str, Path]) -> List[Span]:
    """Load a span export written by :meth:`SpanRecorder.write_json`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"span export not found: {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable span export {path}: {exc}")
    if not isinstance(data, dict) or "spans" not in data \
            or data.get("version") != SPANS_VERSION:
        raise ConfigurationError(
            f"{path} is not a span export (version {SPANS_VERSION} expected)")
    return [Span.from_dict(span) for span in data["spans"]]


def spans_from_payload(payload: Dict[str, Any]) -> List[Span]:
    """Rebuild the span list from :meth:`SpanRecorder.to_payload`."""
    return [Span.from_dict(span) for span in payload.get("spans", [])]


#: chrome-trace lane per span kind, one thread id each so the timeline
#: reads top-down: query, phases, fragments, batches, stalls, causes.
_TRACE_LANES = {
    SPAN_QUERY: 1, SPAN_PLANNING: 2, SPAN_EXEC_PHASE: 2, SPAN_FRAGMENT: 3,
    SPAN_BATCH: 4, SPAN_STALL: 5, SPAN_ADMISSION_WAIT: 6, SPAN_LEASE_GROW: 6,
    SPAN_BUDGET_REPLAN: 6, SPAN_RATE_REPLAN: 6,
}


def span_trace_events(spans: List[Span]) -> List[Dict[str, Any]]:
    """Chrome Trace Event list for a span tree.

    Finished spans render as complete ("X") events; open or zero-length
    spans as instants.  The caused-by edges become flow events ("s"/"f")
    so ``chrome://tracing`` draws an arrow from cause to effect.
    """
    last_time = max((span.end for span in spans if span.end is not None),
                    default=0.0)
    lanes = dict(_TRACE_LANES)
    events: List[Dict[str, Any]] = []
    seen_lanes: Dict[int, str] = {}
    for span in spans:
        tid = lanes.setdefault(span.kind, max(lanes.values(), default=0) + 1)
        seen_lanes.setdefault(tid, span.kind)
        start = span.start
        end = span.end if span.end is not None else last_time
        args = {"span_id": span.span_id, **span.attrs}
        if span.caused_by is not None:
            args["caused_by"] = span.caused_by
        if end > start:
            events.append({
                "name": span.name, "cat": span.kind, "ph": "X",
                "ts": start * _SECONDS_TO_US,
                "dur": max(1.0, (end - start) * _SECONDS_TO_US),
                "pid": 1, "tid": tid, "args": args,
            })
        else:
            events.append({
                "name": span.name, "cat": span.kind, "ph": "i", "s": "t",
                "ts": start * _SECONDS_TO_US, "pid": 1, "tid": tid,
                "args": args,
            })
        if span.caused_by is not None and 0 <= span.caused_by < len(spans):
            cause = spans[span.caused_by]
            flow_id = span.span_id
            events.append({
                "name": "caused-by", "cat": "causality", "ph": "s",
                "id": flow_id, "ts": cause.start * _SECONDS_TO_US,
                "pid": 1, "tid": lanes.get(cause.kind, 1),
            })
            events.append({
                "name": "caused-by", "cat": "causality", "ph": "f",
                "bp": "e", "id": flow_id, "ts": start * _SECONDS_TO_US,
                "pid": 1, "tid": tid,
            })
    metadata = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": kind}}
                for tid, kind in sorted(seen_lanes.items())]
    return metadata + events
