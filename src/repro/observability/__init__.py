"""Unified telemetry layer: metrics, stall attribution, decision audit.

See :mod:`repro.observability.telemetry` for the per-machine facade the
runtime hangs everything off (``world.telemetry``).
"""

from repro.observability.audit import (
    DECISION_CF_CREATE,
    DECISION_DEGRADE,
    DECISION_MEMORY_SPLIT,
    DECISION_MF_STOP,
    DECISION_REOPT_SWAP,
    DecisionAuditLog,
    DecisionRecord,
)
from repro.observability.export import (
    load_metrics_json,
    prometheus_text,
    telemetry_snapshot,
    write_metrics_csv,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.observability.flight import (
    ENTRY_BATCH,
    ENTRY_DECISION,
    ENTRY_PHASE,
    ENTRY_SAMPLE,
    ENTRY_STALL,
    FlightEntry,
    FlightRecorder,
    StallWatchdog,
    flight_trace_events,
    load_flight_dump,
)
from repro.observability.live import (
    MetricsPublisher,
    build_live_snapshot,
    live_prometheus_text,
)
from repro.observability.registry import (
    BATCH_BUCKETS,
    DURATION_BUCKETS_S,
    NULL_METRIC,
    NULL_REGISTRY,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    NullMetric,
)
from repro.observability.sampling import SamplePoint, TelemetrySampler, take_sample
from repro.observability.stalls import (
    STALL_MEMORY_WAIT,
    STALL_NO_SCHEDULABLE,
    STALL_TIMEOUT,
    StallAttribution,
    StallInterval,
    is_source_wait,
    source_wait,
)
from repro.observability.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "BATCH_BUCKETS",
    "DECISION_CF_CREATE",
    "DECISION_DEGRADE",
    "DECISION_MEMORY_SPLIT",
    "DECISION_MF_STOP",
    "DECISION_REOPT_SWAP",
    "DURATION_BUCKETS_S",
    "ENTRY_BATCH",
    "ENTRY_DECISION",
    "ENTRY_PHASE",
    "ENTRY_SAMPLE",
    "ENTRY_STALL",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "CounterMetric",
    "DecisionAuditLog",
    "DecisionRecord",
    "FlightEntry",
    "FlightRecorder",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsPublisher",
    "MetricsRegistry",
    "NullMetric",
    "SamplePoint",
    "StallAttribution",
    "StallInterval",
    "StallWatchdog",
    "Telemetry",
    "TelemetrySampler",
    "build_live_snapshot",
    "flight_trace_events",
    "is_source_wait",
    "live_prometheus_text",
    "load_flight_dump",
    "load_metrics_json",
    "prometheus_text",
    "source_wait",
    "take_sample",
    "telemetry_snapshot",
    "write_metrics_csv",
    "write_metrics_json",
    "write_metrics_prometheus",
    "STALL_MEMORY_WAIT",
    "STALL_NO_SCHEDULABLE",
    "STALL_TIMEOUT",
]
