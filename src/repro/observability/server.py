"""The embedded observability HTTP server (``repro live --serve``).

A tiny, dependency-free :mod:`http.server` instance running on a daemon
thread next to a live run.  Three endpoints:

* ``GET /metrics``  — the latest :func:`~repro.observability.live.
  live_prometheus_text` exposition (Prometheus scrape target);
* ``GET /healthz``  — JSON liveness: snapshot sequence number and the
  run clock, status 200 while serving;
* ``GET /stream``   — Server-Sent Events: one ``data:`` line of
  snapshot JSON per published snapshot (``repro top`` attaches here).

The server only ever *reads* the :class:`~repro.observability.live.
MetricsPublisher`; the engine thread publishes.  Binding to port 0
picks an ephemeral port (see :attr:`ObservabilityServer.port`), which
is what the tests use to scrape a run mid-flight.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, BinaryIO, Optional

from repro.observability.live import MetricsPublisher, live_prometheus_text

#: how long one SSE poll waits for a fresh snapshot before re-checking
#: whether the server is shutting down.
_STREAM_POLL_S = 0.25


def write_sse_event(wfile: BinaryIO, snapshot: Any, seq: int,
                    event: Optional[str] = None) -> None:
    """Write one Server-Sent-Events frame (``id`` + JSON ``data``).

    ``event`` names the frame (``event: alert``); unnamed frames are the
    default ``message`` events every existing client already consumes.
    """
    payload = json.dumps(snapshot, sort_keys=True)
    name = f"event: {event}\n" if event else ""
    wfile.write(f"{name}id: {seq}\ndata: {payload}\n\n".encode("utf-8"))
    wfile.flush()


def stream_publisher(wfile: BinaryIO, publisher: MetricsPublisher,
                     stopping: threading.Event,
                     poll_s: float = _STREAM_POLL_S) -> None:
    """Stream a publisher's snapshots over SSE until it closes.

    Each client gets its own bounded drop-oldest subscription, so a slow
    or disconnected client only loses *its own* frames — the publisher
    and the other clients never block behind it.  Ends with an
    ``event: end`` frame (how clients distinguish a finished run from a
    dropped connection).
    """
    subscription = publisher.subscribe()
    try:
        while not stopping.is_set():
            snapshot, seq = subscription.pop(poll_s)
            if snapshot is not None:
                # Alert frames (publish_event) travel as named SSE
                # events so EventSource-style clients can listen
                # separately; snapshots stay default `message` events.
                kind = (snapshot.get("kind")
                        if isinstance(snapshot, dict) else None)
                write_sse_event(wfile, snapshot, seq,
                                event="alert" if kind == "alert" else None)
            elif subscription.finished:
                break
        wfile.write(b"event: end\ndata: {}\n\n")
        wfile.flush()
    finally:
        subscription.close()


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``self.server`` is the :class:`_Server` below."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # the CLI run's stdout belongs to the experiment output

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- endpoints ---------------------------------------------------------
    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._metrics()
        elif path == "/healthz":
            self._healthz()
        elif path == "/stream":
            self._stream()
        else:
            self._send(404, "text/plain; charset=utf-8",
                       b"unknown endpoint; try /metrics, /healthz, /stream\n")

    def _metrics(self) -> None:
        publisher = self.server.publisher
        snapshot, _seq = publisher.latest()
        body = live_prometheus_text(
            snapshot, stream_dropped=publisher.dropped_total).encode("utf-8")
        self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)

    def _healthz(self) -> None:
        snapshot, seq = self.server.publisher.latest()
        body = json.dumps({
            "status": "ok",
            "serving": not self.server.publisher.closed,
            "snapshots": seq,
            "now": snapshot["now"] if snapshot is not None else None,
        }).encode("utf-8")
        self._send(200, "application/json", body)

    def _stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            stream_publisher(self.wfile, self.server.publisher,
                             self.server.stopping)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        finally:
            self.close_connection = True


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: ephemeral-port reuse between quick test restarts.
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int],
                 publisher: MetricsPublisher):
        super().__init__(address, _Handler)
        self.publisher = publisher
        self.stopping = threading.Event()


class ObservabilityServer:
    """Owns the HTTP server thread for one serving live run."""

    def __init__(self, publisher: MetricsPublisher,
                 host: str = "127.0.0.1", port: int = 0):
        self.publisher = publisher
        self._server = _Server((host, port), publisher)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="observability-http",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the server thread (idempotent)."""
        if self._thread is None:
            return
        self._server.stopping.set()
        self.publisher.close()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join()
        self._thread = None

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"ObservabilityServer({self.url}, {state})"
