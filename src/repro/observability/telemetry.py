"""The per-machine telemetry facade.

One :class:`Telemetry` object per simulated machine (``world.telemetry``)
bundles the four observability channels:

* :attr:`registry` — the :class:`~repro.observability.registry.MetricsRegistry`
  of named counters / gauges / histograms (gated by ``enabled``);
* :attr:`stalls` — the :class:`~repro.observability.stalls.StallAttribution`
  idle-time breakdown (always on: one dict update per stall);
* :attr:`audit` — the :class:`~repro.observability.audit.DecisionAuditLog`
  of scheduler decisions (always on: decisions are rare and bounded);
* :attr:`samples` — the periodic :class:`~repro.observability.sampling.SamplePoint`
  time series (only when ``enabled`` and ``sample_interval > 0``).

Components constructed without an explicit telemetry object get a shared
disabled instance, so direct construction in tests keeps working.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.observability.audit import DecisionAuditLog
from repro.observability.flight import FlightRecorder
from repro.observability.registry import MetricsRegistry
from repro.observability.sampling import SamplePoint, TelemetrySampler
from repro.observability.spans import SpanRecorder
from repro.observability.stalls import StallAttribution
from repro.exec import Kernel


class Telemetry:
    """Bundles registry, stall attribution, audit log and samples."""

    def __init__(self, sim: Optional[Kernel] = None, enabled: bool = False,
                 sample_interval: float = 0.0):
        self.sim = sim
        self.enabled = enabled
        self.sample_interval = sample_interval
        self.registry = MetricsRegistry(sim=sim, enabled=enabled)
        self.stalls = StallAttribution()
        self.audit = DecisionAuditLog()
        self.samples: list[SamplePoint] = []
        #: optional flight recorder; ``None`` (the default) keeps every
        #: instrumented hot path at a single attribute check.
        self.flight: Optional[FlightRecorder] = None
        #: optional causal span recorder; ``None`` keeps the compiled
        #: hook tables free of span callables entirely.
        self.spans: Optional[SpanRecorder] = None
        self._sampler: Optional[TelemetrySampler] = None

    @property
    def sampling(self) -> bool:
        """True when periodic sampling should run."""
        return self.enabled and self.sample_interval > 0 and self.sim is not None

    def start_sampler(
            self, memory: Any, cm: Any,
            on_sample: Optional[Callable[[SamplePoint], None]] = None,
    ) -> Optional[TelemetrySampler]:
        """Start the periodic sampler if sampling is configured.

        The caller owns termination: arrange for :meth:`stop_sampler` to
        run when the observed execution ends, or the sampler's periodic
        timeouts keep the simulation alive forever.  ``on_sample`` is
        passed through to the sampler (the live engine publishes its
        HTTP snapshot from there).
        """
        if not self.sampling or self._sampler is not None:
            return None
        self._sampler = TelemetrySampler(self.sim, self.sample_interval,
                                         memory, cm, self.samples,
                                         on_sample=on_sample)
        self._sampler.start()
        return self._sampler

    def stop_sampler(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"Telemetry({state}, {len(self.registry)} metrics, "
                f"{len(self.audit)} decisions, {len(self.samples)} samples)")


#: shared disabled telemetry for components constructed without one.
NULL_TELEMETRY = Telemetry()
