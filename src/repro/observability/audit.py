"""The scheduler decision audit log.

Every adaptive decision the engine takes — PC degradation, MF stop, CF
creation, DQO memory split, re-optimization swap — is recorded as a
*typed* :class:`DecisionRecord` carrying the numbers that drove it: the
chain's critical degree, its benefit materialization indicator against
the threshold ``bmt``, the delivery-wait estimate, and the memory in use
at decision time.  "Checking the execution traces" (Section 5.3) then
becomes a structured query instead of string matching.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: decision kinds the runtime records.
DECISION_DEGRADE = "degrade"
DECISION_MF_STOP = "mf-stop"
DECISION_CF_CREATE = "cf-create"
DECISION_MEMORY_SPLIT = "memory-split"
DECISION_REOPT_SWAP = "reopt-swap"
#: decision kinds the resource-governance plane records.
DECISION_ADMIT = "admit"
DECISION_ADMISSION_QUEUE = "admission-queue"
DECISION_LEASE_GROW = "lease-grow"
DECISION_LEASE_SHRINK = "lease-shrink"


@dataclass(frozen=True)
class DecisionRecord:
    """One scheduler decision and the inputs it saw."""

    time: float
    kind: str
    #: the chain / fragment / join the decision is about.
    subject: str
    #: ``critical(p) = n_p * (w_p - c_p)`` at decision time (Section 4.3).
    critical: Optional[float] = None
    #: ``bmi(p) = w_p / (2 * IO_p)`` at decision time (Section 4.4).
    bmi: Optional[float] = None
    #: the benefit materialization threshold the bmi was compared against.
    bmt: Optional[float] = None
    #: estimated per-tuple waiting time ``w_p`` of the subject's source.
    wait_per_tuple: Optional[float] = None
    #: source tuples still to retrieve when the decision was taken.
    remaining_tuples: Optional[float] = None
    memory_used_bytes: Optional[int] = None
    memory_total_bytes: Optional[int] = None
    #: kind-specific extras (temp names, corrected cardinalities, ...).
    details: dict[str, Any] = field(default_factory=dict)

    def args(self) -> dict[str, Any]:
        """Non-None payload fields flattened for trace-instant export."""
        payload = {key: value for key, value in asdict(self).items()
                   if key not in ("time", "kind", "subject", "details")
                   and value is not None}
        payload.update(self.details)
        return payload

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionRecord":
        return cls(**data)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                           for k, v in self.args().items())
        return (f"[{self.time:12.6f}] {self.kind:<12} {self.subject}"
                + (f" ({extras})" if extras else ""))


#: typed fields of :class:`DecisionRecord` that callers may pass directly;
#: any other keyword lands in ``details``.
_TYPED_FIELDS = frozenset({
    "critical", "bmi", "bmt", "wait_per_tuple", "remaining_tuples",
    "memory_used_bytes", "memory_total_bytes",
})


class DecisionAuditLog:
    """Append-only log of :class:`DecisionRecord`.

    ``capacity`` bounds the log to the newest N records (a ring) — the
    always-on service sets it so an unbounded submission stream cannot
    grow the machine's audit log without limit.  One-shot runs keep the
    default unbounded list, so nothing a finished run reports changes.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self.records: "List[DecisionRecord] | deque[DecisionRecord]" = (
            [] if capacity is None else deque(maxlen=capacity))
        #: total records ever appended (>= len() once the ring wraps).
        self.appended = 0
        #: optional observer invoked after each appended record (the
        #: flight recorder hooks in here); must not raise.
        self.on_record: Optional[Callable[[DecisionRecord], None]] = None

    def record(self, kind: str, subject: str, time: float,
               details: Optional[Dict[str, Any]] = None,
               **fields: Any) -> DecisionRecord:
        """Append one decision.

        Keywords matching :class:`DecisionRecord`'s typed fields fill
        them; everything else is merged into ``details``.
        """
        typed = {key: value for key, value in fields.items()
                 if key in _TYPED_FIELDS}
        extras = {key: value for key, value in fields.items()
                  if key not in _TYPED_FIELDS}
        merged = {**(details or {}), **extras}
        record = DecisionRecord(time=time, kind=kind, subject=subject,
                                details=merged, **typed)
        self.records.append(record)
        self.appended += 1
        if self.on_record is not None:
            self.on_record(record)
        return record

    def filter(self, kind: Optional[str] = None,
               subject: Optional[str] = None) -> Iterator[DecisionRecord]:
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if subject is not None and record.subject != subject:
                continue
            yield record

    def count(self, kind: str) -> int:
        return sum(1 for _ in self.filter(kind))

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"DecisionAuditLog({len(self.records)} records)"
