"""Periodic time-series sampling of runtime occupancy signals.

A sampler process wakes on a configurable *virtual-time* interval and
records memory occupancy, per-source delivery rates and communication
queue depths — the longitudinal view that per-event metrics cannot give
(e.g. "was memory full *while* source F starved the engine?").

The sampler is a plain simulation process; whoever starts it must also
stop it (via the stop event) when the observed execution completes, or
the periodic timeouts would keep the simulation alive forever.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.common.errors import ConfigurationError
from repro.exec import Kernel, Process, SimEvent


@dataclass(frozen=True)
class SamplePoint:
    """One periodic snapshot of runtime occupancy."""

    time: float
    memory_used_bytes: int
    memory_total_bytes: int
    #: tuples buffered per source queue.
    queue_depth_tuples: dict[str, int] = field(default_factory=dict)
    #: messages buffered per source queue.
    queue_depth_messages: dict[str, int] = field(default_factory=dict)
    #: estimated delivery rate per source (tuples/s; 0.0 before any data).
    source_rates: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SamplePoint":
        return cls(**data)


def take_sample(sim: Kernel, memory: Any, cm: Any) -> SamplePoint:
    """Snapshot ``memory`` and the communication manager ``cm`` now."""
    rates = {}
    for source, estimator in cm.estimators.items():
        rate = estimator.delivery_rate
        rates[source] = rate if rate is not None else 0.0
    return SamplePoint(
        time=sim.now,
        memory_used_bytes=memory.used_bytes,
        memory_total_bytes=memory.total_bytes,
        queue_depth_tuples={source: queue.tuples_available
                            for source, queue in cm.queues.items()},
        queue_depth_messages={source: len(queue._messages)
                              for source, queue in cm.queues.items()},
        source_rates=rates,
    )


class TelemetrySampler:
    """Drives periodic :func:`take_sample` calls as a simulation process.

    The same process works on every backend: on the virtual-time
    simulator the interval is virtual seconds, on the wall-clock
    :class:`~repro.exec.aio.AsyncioKernel` the timeouts are real sleeps,
    so live runs emit the same periodic series.  ``on_sample`` (if given)
    is invoked with each fresh :class:`SamplePoint` — the live
    observability plane publishes its HTTP/SSE snapshot from there.
    """

    def __init__(self, sim: Kernel, interval: float, memory: Any, cm: Any,
                 sink: list[SamplePoint],
                 on_sample: Optional[Callable[[SamplePoint], None]] = None):
        if interval <= 0:
            raise ConfigurationError(
                f"sampling interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.memory = memory
        self.cm = cm
        self.sink = sink
        self.on_sample = on_sample
        self._stop = sim.event(name="sampler-stop")
        self._process: Optional[Process] = None

    def start(self) -> Process:
        if self._process is not None:
            raise ConfigurationError("sampler started twice")
        self._process = self.sim.process(self._run(), name="telemetry-sampler")
        return self._process

    def stop(self) -> None:
        """Ask the sampler to exit (idempotent)."""
        if not self._stop.triggered:
            self._stop.succeed("stop")

    def _run(self) -> Generator[SimEvent, Any, None]:
        while True:
            tick = self.sim.timeout(self.interval)
            yield self.sim.any_of([tick, self._stop])
            if self._stop.triggered:
                return
            sample = take_sample(self.sim, self.memory, self.cm)
            self.sink.append(sample)
            if self.on_sample is not None:
                self.on_sample(sample)
