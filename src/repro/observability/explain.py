"""The critical-path analyzer behind ``repro explain``.

The paper's argument is about *where response time goes*; this module
turns a recorded span tree (:mod:`repro.observability.spans`) into that
answer for a single query.  The engine executes on one mediator CPU, so
the query span's timeline **is** the critical path to the final answer:
every instant between submit and EndOfQEP is spent in exactly one leaf
span (a scheduling batch, an attributed stall, a planning phase, an
admission wait) or in the gaps between them (context switches, CPU
queueing — scheduling overhead).  :func:`critical_path` walks the span
DAG, partitions the timeline into those segments, and
:func:`explain_spans` attributes the total to

* ``execution`` — pipelined batch work (PC / CF / continuation),
* ``materialization`` — MF batch work writing temps,
* ``source-wait`` — stalls attributed to a slow wrapper,
* ``memory/admission-wait`` — memory stalls, admission-queue waits,
* ``scheduling-overhead`` — planning phases, timeouts, switch gaps,

with the attributed segments re-summing **exactly** to the query's
response time (a residual-absorption pass pushes float rounding dust
into the scheduling bucket until the left-to-right sum is equal).

The diff half (:func:`format_explanation_diff`,
:func:`format_bench_diff`) compares two runs — or two committed
``BENCH_PR*.json`` reports — and attributes the delta per category, so
"why is SEQ 2.3 s slower than DSE here" becomes a one-screen answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.observability.spans import (
    SPAN_ADMISSION_WAIT,
    SPAN_BATCH,
    SPAN_PLANNING,
    SPAN_QUERY,
    SPAN_STALL,
    Span,
)
from repro.observability.stalls import (
    STALL_ADMISSION_WAIT,
    STALL_MEMORY_WAIT,
    is_source_wait,
)

#: attribution categories, in report (and exact re-sum) order.
CAT_EXECUTION = "execution"
CAT_MATERIALIZATION = "materialization"
CAT_SOURCE_WAIT = "source-wait"
CAT_MEMORY_WAIT = "memory/admission-wait"
CAT_SCHEDULING = "scheduling-overhead"

CATEGORIES = (CAT_EXECUTION, CAT_MATERIALIZATION, CAT_SOURCE_WAIT,
              CAT_MEMORY_WAIT, CAT_SCHEDULING)

#: leaf span kinds that occupy critical-path time.
_LEAF_KINDS = frozenset(
    {SPAN_BATCH, SPAN_STALL, SPAN_PLANNING, SPAN_ADMISSION_WAIT})


@dataclass(frozen=True)
class Segment:
    """One contiguous critical-path interval with its attribution."""

    start: float
    end: float
    category: str
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Explanation:
    """The attributed critical path of one finished query."""

    name: str
    strategy: str
    response_time: float
    segments: List[Segment]
    #: per-category totals in :data:`CATEGORIES` order; their
    #: left-to-right sum equals ``response_time`` exactly.
    totals: Dict[str, float]

    @property
    def accounted(self) -> float:
        total = 0.0
        for category in CATEGORIES:
            total += self.totals[category]
        return total


def _leaf_category(span: Span) -> str:
    """Attribution category of one leaf span."""
    if span.kind == SPAN_BATCH:
        if span.attrs.get("fragment_kind") == "mf":
            return CAT_MATERIALIZATION
        return CAT_EXECUTION
    if span.kind == SPAN_STALL:
        cause = str(span.attrs.get("cause", span.name))
        if is_source_wait(cause):
            return CAT_SOURCE_WAIT
        if cause in (STALL_MEMORY_WAIT, STALL_ADMISSION_WAIT):
            return CAT_MEMORY_WAIT
        return CAT_SCHEDULING
    if span.kind == SPAN_ADMISSION_WAIT:
        return CAT_MEMORY_WAIT
    return CAT_SCHEDULING  # planning


def _query_root(spans: Sequence[Span],
                query: Optional[str] = None) -> Span:
    roots = [span for span in spans if span.kind == SPAN_QUERY]
    if query is not None:
        roots = [span for span in roots if span.name == query]
    if not roots:
        raise ConfigurationError(
            "no query span in the export"
            + (f" matching {query!r}" if query else "")
            + " (was the run recorded with spans enabled?)")
    return roots[0]


def _descendant_ids(spans: Sequence[Span], root_id: int) -> set:
    children: Dict[Optional[int], List[int]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span.span_id)
    ids = set()
    frontier = [root_id]
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            if child not in ids:
                ids.add(child)
                frontier.append(child)
    return ids


def critical_path(spans: Sequence[Span],
                  query: Optional[str] = None) -> List[Segment]:
    """Partition the query span's timeline into attributed segments.

    Leaf spans (batches, stalls, planning phases, admission waits) under
    the query root claim their intervals; every uncovered gap becomes a
    ``scheduling-overhead`` segment.  Segments tile ``[t0, T]`` with no
    overlap, so their durations account for the whole response time.
    """
    root = _query_root(spans, query)
    t0 = root.start
    horizon = root.end if root.end is not None else max(
        (s.end for s in spans if s.end is not None), default=t0)
    inside = _descendant_ids(spans, root.span_id)
    inside.add(root.span_id)
    leaves = sorted(
        (s for s in spans
         if s.kind in _LEAF_KINDS and s.end is not None
         and (s.span_id in inside or s.parent_id is None)),
        key=lambda s: (s.start, s.span_id))

    segments: List[Segment] = []
    cursor = t0

    def emit(start: float, end: float, category: str, label: str) -> None:
        if end <= start:
            return
        last = segments[-1] if segments else None
        if (last is not None and last.category == category
                and last.label == label and last.end == start):
            segments[-1] = Segment(last.start, end, category, label)
        else:
            segments.append(Segment(start, end, category, label))

    for leaf in leaves:
        start = max(leaf.start, cursor)
        end = min(leaf.end if leaf.end is not None else horizon, horizon)
        if end <= cursor:
            continue
        if start > cursor:
            emit(cursor, start, CAT_SCHEDULING, "engine")
        emit(start, end, _leaf_category(leaf), leaf.name)
        cursor = end
    if cursor < horizon:
        emit(cursor, horizon, CAT_SCHEDULING, "engine")
    return segments


def explain_spans(spans: Sequence[Span], query: Optional[str] = None,
                  strategy: str = "") -> Explanation:
    """Build the attributed critical path of one recorded query.

    The per-category totals re-sum *exactly* (float equality) to the
    response time: rounding dust from the segment additions is absorbed
    into the ``scheduling-overhead`` bucket, which by construction is
    the engine's own bookkeeping time.
    """
    root = _query_root(spans, query)
    horizon = root.end if root.end is not None else max(
        (s.end for s in spans if s.end is not None), default=root.start)
    response_time = horizon - root.start
    segments = critical_path(spans, query)
    totals = {category: 0.0 for category in CATEGORIES}
    for segment in segments:
        totals[segment.category] += segment.duration
    # Exact re-sum: left-to-right float addition of the five category
    # totals rarely lands on ``response_time`` to the last ulp.  The
    # rounding dust (ulps at most) is charged to scheduling overhead by
    # replacing its total with ``response_time - partial`` where
    # ``partial`` is the same left-to-right sum of the other four: by
    # Sterbenz's lemma the subtraction is exact whenever ``partial`` is
    # within a factor of two of ``response_time`` (always, in practice —
    # engine bookkeeping is never half the response time), making
    # ``partial + (response_time - partial)`` bit-equal to
    # ``response_time``.  An incremental fallback covers the remainder.
    partial = 0.0
    for category in CATEGORIES[:-1]:
        partial += totals[category]
    totals[CAT_SCHEDULING] = response_time - partial
    for _ in range(8):
        accounted = 0.0
        for category in CATEGORIES:
            accounted += totals[category]
        residual = response_time - accounted
        if residual == 0.0:
            break
        totals[CAT_SCHEDULING] += residual
    return Explanation(
        name=root.name,
        strategy=strategy or str(root.attrs.get("strategy", "")),
        response_time=response_time,
        segments=segments,
        totals=totals)


# -- rendering -------------------------------------------------------------

def _bar(fraction: float, width: int = 24) -> str:
    return "#" * max(0, min(width, round(fraction * width)))


def format_explanation(explanation: Explanation,
                       top_segments: int = 8) -> str:
    """One-screen text rendering of an attributed critical path."""
    lines = []
    title = explanation.name or "query"
    strategy = f" ({explanation.strategy})" if explanation.strategy else ""
    lines.append(f"critical path: {title}{strategy}  "
                 f"response time {explanation.response_time:.3f}s")
    lines.append("")
    rt = explanation.response_time
    for category in CATEGORIES:
        value = explanation.totals[category]
        fraction = value / rt if rt > 0 else 0.0
        lines.append(f"  {category:<22} {value:>9.3f}s  {fraction:>6.1%}  "
                     f"{_bar(fraction)}")
    exact = explanation.accounted == explanation.response_time
    lines.append(f"  {'= response time':<22} {explanation.accounted:>9.3f}s"
                 f"  ({'exact' if exact else 'residual!'})")
    longest = sorted(explanation.segments,
                     key=lambda s: -s.duration)[:top_segments]
    if longest:
        lines.append("")
        lines.append("longest critical-path segments:")
        for segment in longest:
            lines.append(
                f"  {segment.duration:>9.3f}s  {segment.category:<22} "
                f"{segment.label:<18} [{segment.start:.3f} → "
                f"{segment.end:.3f}]")
    return "\n".join(lines)


def format_explanation_diff(base: Explanation,
                            other: Explanation) -> str:
    """Attribute the response-time delta between two runs per category."""
    base_name = base.strategy or base.name or "base"
    other_name = other.strategy or other.name or "other"
    delta_rt = other.response_time - base.response_time
    lines = [f"span diff: {base_name} ({base.response_time:.3f}s) vs "
             f"{other_name} ({other.response_time:.3f}s)  "
             f"delta {delta_rt:+.3f}s", ""]
    lines.append(f"  {'category':<22} {base_name:>12} {other_name:>12} "
                 f"{'delta':>10}")
    for category in CATEGORIES:
        a = base.totals[category]
        b = other.totals[category]
        lines.append(f"  {category:<22} {a:>11.3f}s {b:>11.3f}s "
                     f"{b - a:>+9.3f}s")
    biggest = max(CATEGORIES,
                  key=lambda c: abs(other.totals[c] - base.totals[c]))
    lines.append("")
    lines.append(f"largest contributor to the delta: {biggest} "
                 f"({other.totals[biggest] - base.totals[biggest]:+.3f}s)")
    return "\n".join(lines)


def format_bench_diff(base: Dict[str, Any], current: Dict[str, Any],
                      base_label: str = "base",
                      current_label: str = "current") -> str:
    """Per-case wall-clock diff of two ``BENCH_PR*.json`` reports."""
    base_cases = {case["name"]: case for case in base.get("cases", [])}
    current_cases = {case["name"]: case for case in current.get("cases", [])}
    lines = [f"bench diff: {base_label} vs {current_label}", ""]
    lines.append(f"  {'case':<22} {base_label:>12} {current_label:>12} "
                 f"{'delta':>9}")
    for name, base_case in base_cases.items():
        current_case = current_cases.get(name)
        if current_case is None:
            continue
        a = float(base_case.get("wall_s", 0.0))
        b = float(current_case.get("wall_s", 0.0))
        change = (b - a) / a if a else 0.0
        lines.append(f"  {name:<22} {a:>11.4f}s {b:>11.4f}s {change:>+8.1%}")
    derived_a = base.get("derived", {})
    derived_b = current.get("derived", {})
    shared = [key for key in derived_a if key in derived_b]
    if shared:
        lines.append("")
        lines.append(f"  {'derived metric':<22} {base_label:>12} "
                     f"{current_label:>12}")
        for key in sorted(shared):
            a_val, b_val = derived_a[key], derived_b[key]
            a_text = f"{a_val:,.2f}" if a_val is not None else "n/a"
            b_text = f"{b_val:,.2f}" if b_val is not None else "n/a"
            lines.append(f"  {key:<22} {a_text:>12} {b_text:>12}")
    return "\n".join(lines)


def span_summary(spans: Sequence[Span]) -> Dict[str, Any]:
    """The compact summary shipped through pool/cache payloads.

    Carries the per-category critical-path attribution and span counts —
    enough for sweep-level analysis without serializing every batch span.
    """
    try:
        explanation = explain_spans(spans)
    except ConfigurationError:
        return {"spans": len(spans), "totals": None, "response_time": None}
    return {
        "spans": len(spans),
        "response_time": explanation.response_time,
        "totals": {category: explanation.totals[category]
                   for category in CATEGORIES},
    }
