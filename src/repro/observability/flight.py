"""The flight recorder: a bounded post-mortem buffer for live runs.

A wall-clock run is opaque while it is happening and gone when it
crashes — exactly when you need its history most.  The flight recorder
keeps the last *N* observability events (batches, scheduler decisions,
attributed stalls, periodic samples, phase markers) in a ring buffer
with negligible overhead, and dumps them — as a loadable JSON
post-mortem plus a ``chrome://tracing`` timeline — when something goes
wrong:

* the :class:`StallWatchdog` fires because the run made no progress for
  ``stall_after`` wall seconds, or exceeded its ``deadline``;
* the engine crashes (the live engine dumps with ``reason="crash"``);
* the caller asks for one explicitly (:meth:`FlightRecorder.dump`).

The recorder is backend-agnostic plain Python: entries carry the kernel
time at which they happened, and recording is a deque append under a
lock (the watchdog thread reads while the engine thread writes).  When
no recorder is attached (``Telemetry.flight is None``) instrumented
paths pay a single attribute check.
"""

from __future__ import annotations

import json
import threading
import time as _time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Union

from repro.common.errors import ConfigurationError

#: bumped on incompatible dump layout changes.
DUMP_VERSION = 1

#: entry kinds the runtime records.
ENTRY_BATCH = "batch"
ENTRY_DECISION = "decision"
ENTRY_STALL = "stall"
ENTRY_SAMPLE = "sample"
ENTRY_PHASE = "phase"

_SECONDS_TO_US = 1e6


@dataclass(frozen=True)
class FlightEntry:
    """One recorded moment: kernel time, kind, and a plain-data payload."""

    time: float
    kind: str
    payload: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "payload": self.payload}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlightEntry":
        return cls(time=data["time"], kind=data["kind"],
                   payload=dict(data["payload"]))


class FlightRecorder:
    """Bounded ring buffer of recent observability events.

    ``capacity`` bounds memory: the buffer holds the *most recent*
    entries, which is what a post-mortem needs.  :meth:`record` is safe
    to call from the engine thread while the watchdog thread dumps.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ConfigurationError(
                f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: Deque[FlightEntry] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0
        #: wall-clock time of the last *progress* entry (a batch); the
        #: stall watchdog watches this.
        self.last_progress_wall = _time.monotonic()
        #: the most recent live snapshot dict, folded into dumps.
        self.latest_snapshot: Optional[Dict[str, Any]] = None

    # -- recording ---------------------------------------------------------
    def record(self, kind: str, time: float, **payload: Any) -> None:
        """Append one entry (drops the oldest beyond ``capacity``)."""
        entry = FlightEntry(time=time, kind=kind, payload=payload)
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
            if kind == ENTRY_BATCH:
                self.last_progress_wall = _time.monotonic()

    def touch(self) -> None:
        """Mark forward progress without recording an entry."""
        self.last_progress_wall = _time.monotonic()

    @property
    def recorded(self) -> int:
        """Total entries ever recorded (>= ``len(self)`` once wrapped)."""
        return self._recorded

    def entries(self) -> List[FlightEntry]:
        """A stable copy of the buffered entries, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- dumping -----------------------------------------------------------
    def dump(self, path: Union[str, Path], reason: str,
             error: Optional[str] = None) -> Path:
        """Write the JSON post-mortem (and a chrome-trace sibling).

        Returns the JSON path; the timeline lands next to it with a
        ``.trace.json`` suffix.  Loadable via :func:`load_flight_dump`.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        entries = self.entries()
        dump = {
            "version": DUMP_VERSION,
            "reason": reason,
            "error": error,
            "capacity": self.capacity,
            "recorded": self._recorded,
            "dropped": max(0, self._recorded - len(entries)),
            "entries": [entry.to_dict() for entry in entries],
            "snapshot": self.latest_snapshot,
        }
        path.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        trace_path = path.with_suffix(".trace.json")
        trace_path.write_text(
            json.dumps({"traceEvents": flight_trace_events(entries),
                        "displayTimeUnit": "ms"}) + "\n",
            encoding="utf-8")
        return path

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self._entries)}/{self.capacity} "
                f"entries, recorded={self._recorded})")


def flight_trace_events(entries: List[FlightEntry]) -> List[Dict[str, Any]]:
    """Chrome Trace Event list for a flight-recorder entry sequence.

    Stalls render as spans (they have a duration), everything else as
    instants; each kind gets its own lane so the timeline reads like a
    strip chart of the run's last moments.
    """
    lanes = {ENTRY_BATCH: 1, ENTRY_STALL: 2, ENTRY_DECISION: 3,
             ENTRY_SAMPLE: 4, ENTRY_PHASE: 5}
    events: List[Dict[str, Any]] = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": kind}}
        for kind, tid in lanes.items()]
    for entry in entries:
        tid = lanes.setdefault(entry.kind, len(lanes) + 1)
        if entry.kind == ENTRY_STALL and "duration" in entry.payload:
            duration = float(entry.payload["duration"])
            events.append({
                "name": str(entry.payload.get("cause", "stall")),
                "cat": entry.kind, "ph": "X",
                "ts": (entry.time - duration) * _SECONDS_TO_US,
                "dur": max(1.0, duration * _SECONDS_TO_US),
                "pid": 1, "tid": tid, "args": dict(entry.payload),
            })
        else:
            events.append({
                "name": str(entry.payload.get("name", entry.kind)),
                "cat": entry.kind, "ph": "i", "s": "t",
                "ts": entry.time * _SECONDS_TO_US,
                "pid": 1, "tid": tid, "args": dict(entry.payload),
            })
    return events


def load_flight_dump(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a dump written by :meth:`FlightRecorder.dump`.

    Returns the dump dict with ``entries`` upgraded to
    :class:`FlightEntry` objects.  Raises :class:`ConfigurationError`
    on a missing, truncated or alien file.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"flight-recorder dump not found: {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"unreadable flight-recorder dump {path}: {exc}")
    if not isinstance(data, dict) or "entries" not in data \
            or data.get("version") != DUMP_VERSION:
        raise ConfigurationError(
            f"{path} is not a flight-recorder dump (version "
            f"{DUMP_VERSION} expected)")
    data["entries"] = [FlightEntry.from_dict(entry)
                       for entry in data["entries"]]
    return data


class StallWatchdog:
    """Background thread that dumps (and aborts) a wedged live run.

    Fires when either condition holds:

    * no progress entry (batch) for ``stall_after`` wall seconds;
    * total wall time exceeds ``deadline`` seconds.

    On firing it dumps the recorder to ``dump_path`` with a reason of
    ``"stall"`` or ``"deadline"`` and invokes ``on_fire(reason, path)``
    (the live engine cancels the kernel from there).  The watchdog fires
    at most once and is stopped with :meth:`stop` on normal completion.
    """

    def __init__(self, recorder: FlightRecorder,
                 dump_path: Union[str, Path],
                 stall_after: Optional[float] = None,
                 deadline: Optional[float] = None,
                 on_fire: Optional[Callable[[str, Path], None]] = None,
                 poll_interval: float = 0.05):
        if stall_after is None and deadline is None:
            raise ConfigurationError(
                "watchdog needs a stall_after and/or a deadline")
        for name, value in (("stall_after", stall_after),
                            ("deadline", deadline)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"watchdog {name} must be positive, got {value}")
        self.recorder = recorder
        self.dump_path = Path(dump_path)
        self.stall_after = stall_after
        self.deadline = deadline
        self.on_fire = on_fire
        self.poll_interval = poll_interval
        self.fired_reason: Optional[str] = None
        self._started_wall = _time.monotonic()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise ConfigurationError("watchdog started twice")
        self._started_wall = _time.monotonic()
        self.recorder.touch()
        self._thread = threading.Thread(target=self._run,
                                        name="flight-watchdog", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Disarm and join the watchdog (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def _check(self) -> Optional[str]:
        now = _time.monotonic()
        if self.deadline is not None \
                and now - self._started_wall > self.deadline:
            return "deadline"
        if self.stall_after is not None \
                and now - self.recorder.last_progress_wall > self.stall_after:
            return "stall"
        return None

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            reason = self._check()
            if reason is not None:
                self.fired_reason = reason
                path = self.recorder.dump(self.dump_path, reason=reason)
                if self.on_fire is not None:
                    self.on_fire(reason, path)
                return
