"""Stall attribution: classify every engine idle interval by cause.

The DQP stalls only when no scheduled fragment has data (Section 3.2);
*why* it had to wait is what the paper diagnoses from execution traces.
Every stall interval is attributed to exactly one cause:

* ``source-wait:<name>`` — woken by a message from wrapper ``<name>``:
  the engine was starved by that remote source;
* ``memory-wait``        — woken by a local temp prefetch completing:
  the engine was waiting for materialized data to be reloaded into
  memory from the local disk;
* ``timeout``            — nothing arrived for the full timeout;
* ``no-schedulable-qf``  — woken for replanning (e.g. a delivery-rate
  change) while no scheduled query fragment had work;
* ``admission-wait``     — (multi-query) the submission sat in the
  admission queue because its minimum working set did not fit the
  global memory pool.

The per-cause totals always sum to ``DynamicQueryProcessor.stall_time``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import SimulationError

STALL_TIMEOUT = "timeout"
STALL_MEMORY_WAIT = "memory-wait"
STALL_NO_SCHEDULABLE = "no-schedulable-qf"
STALL_ADMISSION_WAIT = "admission-wait"
_SOURCE_PREFIX = "source-wait:"


def source_wait(source: str) -> str:
    """The attribution category for an idle wait on wrapper ``source``."""
    return f"{_SOURCE_PREFIX}{source}"


def is_source_wait(cause: str) -> bool:
    return cause.startswith(_SOURCE_PREFIX)


@dataclass(frozen=True)
class StallInterval:
    """One attributed idle interval."""

    started: float
    ended: float
    cause: str

    @property
    def duration(self) -> float:
        return self.ended - self.started


class StallAttribution:
    """Accumulates attributed idle intervals and their per-cause totals.

    Reads (:meth:`by_cause`, :attr:`total`) take a lock shared with
    :meth:`record`, so the live ``/metrics`` thread never iterates the
    breakdown dict mid-mutation and always sees per-cause totals that
    sum exactly to the recorded stall time.
    """

    def __init__(self, keep_intervals: bool = True):
        self.keep_intervals = keep_intervals
        self.intervals: List[StallInterval] = []
        self.breakdown: Dict[str, float] = {}
        self._lock = threading.RLock()
        #: optional observer invoked after each recorded interval (the
        #: flight recorder hooks in here); must not raise.
        self.on_record: Optional[Callable[[StallInterval], None]] = None

    def record(self, cause: str, started: float, ended: float) -> None:
        """Attribute the idle interval ``[started, ended]`` to ``cause``."""
        if ended < started:
            raise SimulationError(
                f"stall interval ends before it starts: {started} > {ended}")
        interval = StallInterval(started, ended, cause)
        with self._lock:
            if self.keep_intervals:
                self.intervals.append(interval)
            self.breakdown[cause] = (self.breakdown.get(cause, 0.0)
                                     + (ended - started))
        if self.on_record is not None:
            self.on_record(interval)

    @property
    def total(self) -> float:
        """Sum of every attributed interval (equals the DQP's stall time)."""
        with self._lock:
            return sum(self.breakdown.values())

    def by_cause(self) -> Dict[str, float]:
        """Per-cause totals, largest first."""
        with self._lock:
            return dict(sorted(self.breakdown.items(),
                               key=lambda item: (-item[1], item[0])))

    def source_waits(self) -> Dict[str, float]:
        """Idle seconds per starving source (``source-wait:*`` only)."""
        with self._lock:
            return {cause[len(_SOURCE_PREFIX):]: seconds
                    for cause, seconds in self.breakdown.items()
                    if is_source_wait(cause)}

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {"total": self.total, "breakdown": self.by_cause()}

    def __repr__(self) -> str:
        return (f"StallAttribution({len(self.breakdown)} causes, "
                f"total={self.total:.6g}s)")
