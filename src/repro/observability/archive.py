"""Durable telemetry archive: segmented, append-only JSONL on disk.

Everything the live service plane publishes is ephemeral — the latency
window, the recent-history ring, snapshots and the flight recorder all
vanish on restart.  The archive is the durable counterpart: an
append-only log of schema-versioned JSON records (one per line) that
survives restarts and answers "what did tenant gold's p99 look like
yesterday?" offline via ``repro history``.

Three layers:

* :class:`SegmentedLog` — the synchronous on-disk format: size/age-based
  segment rotation, gzip of sealed segments, retention by total bytes
  and age.  Fully deterministic (injectable clock) so rotation and
  retention are unit-testable without sleeping.
* :class:`TelemetryArchive` — the service-facing writer: a bounded
  drop-oldest queue drained by a background thread, so the kernel hot
  path pays one lock-guarded append and **never** blocks on disk.  When
  the queue is full the oldest record is shed and counted
  (:attr:`TelemetryArchive.dropped_total`) instead of stalling the
  publisher.
* :class:`ArchiveReader` — corruption-tolerant replay: segments are read
  in sequence order (gzip or plain), torn tails and alien lines are
  skipped with a count instead of aborting, so a crash mid-write never
  poisons the history.

Record layout (one JSON object per line)::

    {"v": 1, "kind": "outcome"|"snapshot"|"decision"|"span"|"alert",
     "t": <epoch seconds>, ...kind-specific payload}

``t`` is wall-clock epoch time so records from different service
incarnations order correctly across restarts.
"""

from __future__ import annotations

import gzip
import json
import threading
import time
import zlib
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.common.errors import ConfigurationError

#: bump when the per-line record layout changes shape.
ARCHIVE_SCHEMA_VERSION = 1

#: record kinds the service writes.
RECORD_SNAPSHOT = "snapshot"
RECORD_OUTCOME = "outcome"
RECORD_DECISION = "decision"
RECORD_SPAN = "span"
RECORD_ALERT = "alert"

RECORD_KINDS = (RECORD_SNAPSHOT, RECORD_OUTCOME, RECORD_DECISION,
                RECORD_SPAN, RECORD_ALERT)

#: segment file naming: ``telemetry-000042.jsonl`` (active / crashed)
#: and ``telemetry-000042.jsonl.gz`` (sealed).
SEGMENT_PREFIX = "telemetry-"
SEGMENT_SUFFIX = ".jsonl"

#: rotation / retention defaults (overridable per archive).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024
DEFAULT_SEGMENT_AGE_S = 15 * 60.0
DEFAULT_RETENTION_BYTES = 256 * 1024 * 1024
DEFAULT_RETENTION_AGE_S = 7 * 24 * 3600.0

#: records the hot path may queue before the oldest is shed.
DEFAULT_QUEUE_CAPACITY = 8192


def _segment_seq(path: Path) -> Optional[int]:
    """The sequence number encoded in a segment filename, else None."""
    name = path.name
    if name.endswith(".gz"):
        name = name[:-3]
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    stem = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(stem) if stem.isdigit() else None


def list_segments(directory: Union[str, Path]) -> List[Path]:
    """Every segment file in ``directory``, oldest (lowest seq) first."""
    root = Path(directory)
    if not root.is_dir():
        return []
    found: List[Tuple[int, Path]] = []
    for path in root.iterdir():
        seq = _segment_seq(path)
        if seq is not None:
            found.append((seq, path))
    return [path for _seq, path in sorted(found)]


class SegmentedLog:
    """Synchronous segmented JSONL writer with rotation and retention.

    Not thread-safe on its own — :class:`TelemetryArchive` serializes
    access through its writer thread.  The active segment stays a plain
    ``.jsonl`` file (a crash leaves at worst one torn final line, which
    replay skips); sealed segments are gzipped in place.
    """

    def __init__(self, directory: Union[str, Path], *,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 max_segment_age_s: float = DEFAULT_SEGMENT_AGE_S,
                 retention_bytes: int = DEFAULT_RETENTION_BYTES,
                 retention_age_s: float = DEFAULT_RETENTION_AGE_S,
                 compress: bool = True,
                 clock: Callable[[], float] = time.time) -> None:
        if max_segment_bytes < 1:
            raise ConfigurationError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}")
        if retention_bytes < max_segment_bytes:
            raise ConfigurationError(
                f"retention_bytes {retention_bytes} is smaller than one "
                f"segment ({max_segment_bytes}); the archive could never "
                f"keep anything")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.max_segment_age_s = max_segment_age_s
        self.retention_bytes = retention_bytes
        self.retention_age_s = retention_age_s
        self.compress = compress
        self.clock = clock
        #: counters an operator (or `/healthz`) reads.
        self.records_written = 0
        self.segments_sealed = 0
        self.segments_deleted = 0
        self.last_write_at: Optional[float] = None
        existing = list_segments(self.directory)
        last = _segment_seq(existing[-1]) if existing else 0
        self._seq = (last or 0)
        self._active: Optional[IO[bytes]] = None
        self._active_path: Optional[Path] = None
        self._active_bytes = 0
        self._active_opened_at = 0.0

    # -- writing -------------------------------------------------------------
    def write(self, record: Dict[str, Any]) -> None:
        """Append one record (stamped with the schema version)."""
        line = json.dumps(dict(record, v=ARCHIVE_SCHEMA_VERSION),
                          sort_keys=True).encode("utf-8") + b"\n"
        now = self.clock()
        if self._active is None:
            self._open_next(now)
        elif (self._active_bytes + len(line) > self.max_segment_bytes
                or now - self._active_opened_at >= self.max_segment_age_s):
            self._seal_active()
            self._open_next(now)
        assert self._active is not None
        self._active.write(line)
        self._active_bytes += len(line)
        self.records_written += 1
        self.last_write_at = now

    def flush(self) -> None:
        if self._active is not None:
            self._active.flush()

    def close(self) -> None:
        """Flush and close the active segment *without* sealing it.

        The plain ``.jsonl`` tail stays readable; the next incarnation
        of the service opens a fresh segment after it.
        """
        if self._active is not None:
            self._active.flush()
            self._active.close()
            self._active = None
            self._active_path = None

    # -- rotation / retention ------------------------------------------------
    def _open_next(self, now: float) -> None:
        self._seq += 1
        self._active_path = (self.directory /
                             f"{SEGMENT_PREFIX}{self._seq:06d}{SEGMENT_SUFFIX}")
        self._active = open(self._active_path, "ab")
        self._active_bytes = 0
        self._active_opened_at = now

    def _seal_active(self) -> None:
        assert self._active is not None and self._active_path is not None
        self._active.flush()
        self._active.close()
        raw = self._active_path
        self._active = None
        self._active_path = None
        if self.compress:
            sealed = raw.with_suffix(raw.suffix + ".gz")
            with open(raw, "rb") as src, gzip.open(sealed, "wb") as dst:
                dst.write(src.read())
            raw.unlink()
        self.segments_sealed += 1
        self._apply_retention()

    def _apply_retention(self) -> None:
        """Delete the oldest sealed segments beyond the byte/age budget."""
        segments = list_segments(self.directory)
        if self._active_path is not None and segments \
                and segments[-1] == self._active_path:
            segments = segments[:-1]
        sizes = {path: path.stat().st_size for path in segments}
        total = sum(sizes.values())
        now = self.clock()
        for path in list(segments):
            too_old = (self.retention_age_s > 0
                       and now - path.stat().st_mtime > self.retention_age_s)
            too_big = total > self.retention_bytes
            if not (too_old or too_big):
                break  # oldest-first: once one survives, the rest do
            path.unlink()
            total -= sizes[path]
            segments.remove(path)
            self.segments_deleted += 1

    # -- introspection -------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """JSON-safe archive health for ``/healthz``."""
        segments = list_segments(self.directory)
        total = sum(path.stat().st_size for path in segments
                    if path.exists())
        return {
            "directory": str(self.directory),
            "segments": len(segments),
            "bytes": total,
            "records_written": self.records_written,
            "segments_sealed": self.segments_sealed,
            "segments_deleted": self.segments_deleted,
            "last_write_age_s": (self.clock() - self.last_write_at
                                 if self.last_write_at is not None else None),
        }


class TelemetryArchive:
    """Non-blocking archive writer for the service hot path.

    :meth:`append` is what the kernel loop calls: one lock-guarded queue
    append; when the bounded queue is full the *oldest* queued record is
    shed and counted so the archive can never exert backpressure on the
    scheduler.  A daemon thread drains the queue into a
    :class:`SegmentedLog`; disk errors are counted, never raised into
    the engine.
    """

    def __init__(self, directory: Union[str, Path], *,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 max_segment_age_s: float = DEFAULT_SEGMENT_AGE_S,
                 retention_bytes: int = DEFAULT_RETENTION_BYTES,
                 retention_age_s: float = DEFAULT_RETENTION_AGE_S,
                 compress: bool = True,
                 clock: Callable[[], float] = time.time) -> None:
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {queue_capacity}")
        self.log = SegmentedLog(
            directory, max_segment_bytes=max_segment_bytes,
            max_segment_age_s=max_segment_age_s,
            retention_bytes=retention_bytes,
            retention_age_s=retention_age_s,
            compress=compress, clock=clock)
        self.queue_capacity = queue_capacity
        #: records shed because the writer fell behind the hot path.
        self.dropped_total = 0
        #: disk failures swallowed by the writer thread.
        self.write_errors = 0
        self._queue: Deque[Dict[str, Any]] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._idle = threading.Event()
        self._idle.set()
        self._thread = threading.Thread(target=self._drain_loop,
                                        name="telemetry-archive",
                                        daemon=True)
        self._thread.start()

    @property
    def directory(self) -> Path:
        return self.log.directory

    # -- hot path ------------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> bool:
        """Queue one record; returns False when it was shed instead.

        Never blocks and never raises on a full queue — the one promise
        the kernel loop needs.
        """
        with self._cond:
            if self._closed:
                self.dropped_total += 1
                return False
            if len(self._queue) >= self.queue_capacity:
                self._queue.popleft()
                self.dropped_total += 1
                appended = False
            else:
                appended = True
            self._queue.append(record)
            self._idle.clear()
            self._cond.notify()
        return appended

    # -- writer thread -------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._idle.set()
                    self._cond.wait()
                if not self._queue and self._closed:
                    self._idle.set()
                    return
                batch = list(self._queue)
                self._queue.clear()
            for record in batch:
                try:
                    self.log.write(record)
                except OSError:
                    self.write_errors += 1
            try:
                self.log.flush()
            except OSError:
                self.write_errors += 1

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every queued record reached the file (best effort)."""
        flushed = self._idle.wait(timeout)
        return flushed

    def close(self, timeout: float = 10.0) -> None:
        """Drain, stop the writer thread and close the log (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)
        self.log.close()

    def stats(self) -> Dict[str, Any]:
        """Disk-free counters, safe on the kernel loop every tick."""
        with self._cond:
            queued = len(self._queue)
            dropped = self.dropped_total
        log = self.log
        return {
            "directory": str(log.directory),
            "queued": queued,
            "queue_capacity": self.queue_capacity,
            "dropped_total": dropped,
            "write_errors": self.write_errors,
            "records_written": log.records_written,
            "segments_sealed": log.segments_sealed,
            "segments_deleted": log.segments_deleted,
            "last_write_age_s": (log.clock() - log.last_write_at
                                 if log.last_write_at is not None else None),
        }

    def health(self) -> Dict[str, Any]:
        """Full health including on-disk totals (stat calls; HTTP threads)."""
        health = self.log.health()
        health.update(self.stats())
        return health


class ArchiveReader:
    """Corruption-tolerant replay over an archive directory.

    Iterates records in segment order; a line that fails to decode (the
    torn tail of a crashed segment, an alien file, a foreign schema
    version) is *skipped and counted*, never fatal.  After iteration,
    :attr:`skipped_lines` / :attr:`skipped_segments` say how much was
    lost and :attr:`segments_read` how much was covered.
    """

    def __init__(self, directory: Union[str, Path], *,
                 kinds: Optional[Iterable[str]] = None,
                 since: Optional[float] = None,
                 until: Optional[float] = None,
                 tenant: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.since = since
        self.until = until
        self.tenant = tenant
        self.segments_read = 0
        self.skipped_lines = 0
        self.skipped_segments = 0
        self.records_read = 0

    def _open(self, path: Path) -> IO[bytes]:
        if path.name.endswith(".gz"):
            return gzip.open(path, "rb")  # type: ignore[return-value]
        return open(path, "rb")

    def _wanted(self, record: Dict[str, Any]) -> bool:
        if record.get("v") != ARCHIVE_SCHEMA_VERSION:
            return False
        kind = record.get("kind")
        if self.kinds is not None and kind not in self.kinds:
            return False
        at = record.get("t")
        if not isinstance(at, (int, float)):
            return False
        if self.since is not None and at < self.since:
            return False
        if self.until is not None and at > self.until:
            return False
        if self.tenant is not None \
                and record.get("tenant") not in (self.tenant, None):
            return False
        return True

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if not self.directory.is_dir():
            raise ConfigurationError(
                f"no archive directory at {self.directory}")
        for path in list_segments(self.directory):
            try:
                with self._open(path) as handle:
                    lines = handle.read().split(b"\n")
            except (OSError, EOFError, zlib.error):
                # A torn gzip (crash mid-seal) loses the segment, not
                # the archive.
                self.skipped_segments += 1
                continue
            self.segments_read += 1
            for line in lines:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped_lines += 1
                    continue
                if record.get("v") != ARCHIVE_SCHEMA_VERSION:
                    self.skipped_lines += 1
                    continue
                if self._wanted(record):
                    self.records_read += 1
                    yield record


def read_archive(directory: Union[str, Path], *,
                 kinds: Optional[Iterable[str]] = None,
                 since: Optional[float] = None,
                 until: Optional[float] = None,
                 tenant: Optional[str] = None
                 ) -> Tuple[List[Dict[str, Any]], ArchiveReader]:
    """Eagerly read matching records; returns ``(records, reader)``.

    The reader carries the skip/coverage counters populated during the
    read — callers surface ``reader.skipped_lines`` as the corruption
    warning the acceptance criteria require.
    """
    reader = ArchiveReader(directory, kinds=kinds, since=since,
                           until=until, tenant=tenant)
    return list(reader), reader
