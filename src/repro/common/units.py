"""Unit conventions and small conversion helpers.

Conventions used throughout the library:

* **time** — seconds of *virtual* (simulated) time, as ``float``;
* **sizes** — bytes, as ``int``;
* **work** — CPU instructions, as ``float`` (fractional instructions are
  fine: they only ever become time by division with an instruction rate);
* **rates** — per-second quantities.

Type aliases :data:`Seconds` and :data:`Instructions` document intent in
signatures without introducing a runtime cost.
"""

from __future__ import annotations

Seconds = float
Instructions = float

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

MILLI = 1e-3
MICRO = 1e-6


def bytes_to_pages(num_bytes: int, page_size: int) -> int:
    """Number of pages needed to hold ``num_bytes`` (ceiling division)."""
    if page_size <= 0:
        raise ValueError(f"page_size must be positive, got {page_size}")
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    return -(-num_bytes // page_size)


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte count (``12.5 MB`` style, powers of 1000)."""
    value = float(num_bytes)
    for suffix in ("B", "KB", "MB", "GB"):
        if abs(value) < 1000.0 or suffix == "GB":
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration, picking µs/ms/s automatically."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < MILLI:
        return f"{seconds / MICRO:.1f} µs"
    if seconds < 1.0:
        return f"{seconds / MILLI:.1f} ms"
    return f"{seconds:.3f} s"
