"""Deterministic random-number streams.

Every stochastic component (one stream per wrapper, one for the query
generator, ...) draws from its own :class:`numpy.random.Generator`, derived
from a single root seed plus a stable string label.  Runs are therefore
reproducible and components are statistically independent: adding a new
consumer never perturbs the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a child seed from ``root_seed`` and a stable ``label``.

    Uses SHA-256 so the mapping is stable across Python versions and runs
    (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A factory of named, independent, reproducible RNG streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, label: str) -> np.random.Generator:
        """Return the stream for ``label``, creating it on first use.

        Repeated calls with the same label return the *same* generator
        object, so draws continue where they left off.
        """
        if label not in self._streams:
            seed = derive_seed(self.root_seed, label)
            self._streams[label] = np.random.default_rng(seed)
        return self._streams[label]

    def fresh(self, label: str) -> np.random.Generator:
        """Return a brand-new generator for ``label``, restarting its stream."""
        seed = derive_seed(self.root_seed, label)
        self._streams[label] = np.random.default_rng(seed)
        return self._streams[label]

    def __repr__(self) -> str:
        return f"RandomStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
