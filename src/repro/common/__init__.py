"""Shared infrastructure: error hierarchy, units, deterministic RNG streams."""

from repro.common.errors import (
    CatalogError,
    ConfigurationError,
    MemoryOverflowError,
    OptimizerError,
    PlanError,
    QueryTimeoutError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.common.rng import RandomStreams, derive_seed
from repro.common.units import (
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    Instructions,
    Seconds,
    bytes_to_pages,
    format_bytes,
    format_seconds,
)

__all__ = [
    "CatalogError",
    "ConfigurationError",
    "GIGA",
    "Instructions",
    "KILO",
    "MEGA",
    "MICRO",
    "MILLI",
    "MemoryOverflowError",
    "OptimizerError",
    "PlanError",
    "QueryTimeoutError",
    "RandomStreams",
    "ReproError",
    "SchedulingError",
    "Seconds",
    "SimulationError",
    "bytes_to_pages",
    "derive_seed",
    "format_bytes",
    "format_seconds",
]
