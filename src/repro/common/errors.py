"""Exception hierarchy for the whole library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type at the public API boundary.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object (simulation parameters, thresholds) is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency."""


class CatalogError(ReproError):
    """A catalog lookup failed or catalog contents are inconsistent."""


class PlanError(ReproError):
    """A query execution plan is malformed or violates a structural invariant."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for the given query."""


class SchedulingError(ReproError):
    """The dynamic query scheduler reached an invalid state."""


class QueryTimeoutError(ReproError):
    """The engine stalled repeatedly with no data on any scheduled fragment.

    Raised when ``max_consecutive_timeouts`` is configured and exceeded —
    the point at which a full system would escalate to phase-2 query
    scrambling or abort the sub-query against the dead source.
    """

    def __init__(self, timeouts: int, stalled_for: float):
        self.timeouts = timeouts
        self.stalled_for = stalled_for
        super().__init__(
            f"engine stalled through {timeouts} consecutive timeouts "
            f"({stalled_for:.1f}s with no data on any scheduled fragment)")


class MemoryOverflowError(ReproError):
    """A pipeline chain was discovered to be not M-schedulable.

    Raised (or signalled) when a pipeline chain cannot run even alone within
    the query's memory budget; the dynamic QEP optimizer must then revise
    the plan (Section 4.2 of the paper).
    """

    def __init__(self, chain_name: str, required: int, available: int):
        self.chain_name = chain_name
        self.required = required
        self.available = available
        super().__init__(
            f"pipeline chain {chain_name!r} needs {required} bytes "
            f"but only {available} are available"
        )
