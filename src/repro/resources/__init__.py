"""Unified resource-governance plane (memory broker + admission).

Memory in the mediator is governed hierarchically:

* :class:`MemoryBroker` — one global pool per mediator machine, leased
  out per query;
* :class:`MemoryLease` — one query's budget.  The lease is the leaf
  accounting layer (byte-accurate per-owner reservations, exactly the
  semantics the old per-query ``MemoryManager`` had — it *is* the
  ``MemoryManager`` re-exported from :mod:`repro.mediator.buffer`);
* per-owner reservations — hash tables and in-memory temps reserve
  against the lease.

:class:`AdmissionController` queues query submissions whose minimum
working set does not fit the pool and admits them FIFO (or by priority)
as other leases release bytes.  When bytes return to the pool, the
broker *offers* them to running leases that subscribed to grow events —
the dynamic budget re-planning hook the DQS uses to convert degraded
pipeline chains back to directly-scheduled ones mid-flight.
"""

from repro.resources.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionTicket,
)
from repro.resources.broker import MemoryBroker, MemoryLease
from repro.resources.tenants import (
    QuotaExceeded,
    TenantAccount,
    TenantRegistry,
    TenantSpec,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionTicket",
    "MemoryBroker",
    "MemoryLease",
    "QuotaExceeded",
    "TenantAccount",
    "TenantRegistry",
    "TenantSpec",
]
