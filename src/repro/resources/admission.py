"""Multi-query admission control over the global memory pool.

A submission declares the memory it wants (``max``) and the minimum
working set it can start with (``min``).  When the pool's spare bytes
cannot cover the minimum, the submission *queues* instead of starting
degraded: the paper's per-query memory limitation becomes a mediator-
wide policy.  Queued submissions are admitted strictly head-of-line
(FIFO, or priority order with FIFO tie-break) as running queries release
their leases — head-of-line keeps a big query from being starved forever
by a stream of small ones.

The grant is ``min(max, max(min, spare))``: a query admitted into a
tight pool starts at what is actually spare (at least its minimum) and
relies on grow offers — :meth:`MemoryBroker._redistribute` — to reach
its maximum later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.exec import Event, Kernel
from repro.observability.audit import DECISION_ADMISSION_QUEUE, DECISION_ADMIT
from repro.observability.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    NullMetric,
)
from repro.observability.telemetry import Telemetry
from repro.resources.broker import MemoryBroker, MemoryLease

#: admission orderings the controller understands.
ADMISSION_POLICIES = ("fifo", "priority")

#: wait-time histogram buckets (virtual seconds in the queue).
_WAIT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)


@dataclass
class AdmissionTicket:
    """One submission's place in (or passage through) the queue."""

    name: str
    min_bytes: int
    max_bytes: int
    priority: float
    submitted_at: float
    seq: int
    #: owning tenant ("" for single-tenant front-ends).
    tenant: str = field(default="")
    #: True once a lease was granted; :attr:`lease` is then set.
    granted: bool = field(default=False)
    lease: Optional[MemoryLease] = field(default=None)
    #: succeeds at admission time; ``yield`` it to wait in the queue.
    event: Optional[Event] = field(default=None)
    admitted_at: Optional[float] = field(default=None)

    @property
    def waited(self) -> float:
        """Virtual seconds spent queued (0.0 for immediate admission)."""
        if self.admitted_at is None:
            return 0.0
        return self.admitted_at - self.submitted_at


class AdmissionController:
    """Queues submissions whose minimum working set does not fit."""

    def __init__(self, broker: MemoryBroker, sim: Kernel,
                 telemetry: Optional[Telemetry] = None,
                 policy: str = "fifo") -> None:
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {ADMISSION_POLICIES}")
        self.broker = broker
        self.sim = sim
        self.telemetry = telemetry
        self.policy = policy
        self.queue: List[AdmissionTicket] = []
        self._seq = 0
        broker.attach_admission(self)
        self._depth_gauge: Optional[GaugeMetric | NullMetric] = None
        self._admitted: Optional[CounterMetric | NullMetric] = None
        self._queued: Optional[CounterMetric | NullMetric] = None
        self._wait_hist: Optional[HistogramMetric | NullMetric] = None
        registry = (telemetry.registry if telemetry is not None else None)
        if registry is not None and registry.enabled:
            self._depth_gauge = registry.gauge(
                "admission.queue_depth", help="submissions waiting for memory")
            self._admitted = registry.counter(
                "admission.admitted", help="submissions granted a lease")
            self._queued = registry.counter(
                "admission.queued", help="submissions that had to wait")
            self._wait_hist = registry.histogram(
                "admission.wait_s", buckets=_WAIT_BUCKETS,
                help="virtual seconds spent in the admission queue")

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def request(self, name: str, min_bytes: int, max_bytes: int,
                priority: float = 0.0, tenant: str = "") -> AdmissionTicket:
        """Ask for a lease; returns a ticket that is either granted
        immediately or queued (``yield ticket.event`` to wait)."""
        if min_bytes <= 0 or max_bytes < min_bytes:
            raise ConfigurationError(
                f"query {name!r}: need 0 < min <= max, "
                f"got min={min_bytes} max={max_bytes}")
        pool = self.broker.total_bytes
        if pool is not None and min_bytes > pool:
            raise ConfigurationError(
                f"query {name!r}: minimum working set {min_bytes} exceeds "
                f"the global memory pool {pool}; it could never be admitted")
        ticket = AdmissionTicket(name=name, min_bytes=min_bytes,
                                 max_bytes=max_bytes, priority=priority,
                                 submitted_at=self.sim.now, seq=self._seq,
                                 tenant=tenant)
        self._seq += 1
        self.queue.append(ticket)
        if self.policy == "priority":
            self.queue.sort(key=lambda t: (-t.priority, t.seq))
        self._drain()
        if not ticket.granted:
            ticket.event = self.sim.event(name=f"admit:{name}")
            self._audit(DECISION_ADMISSION_QUEUE, ticket,
                        queue_depth=len(self.queue))
            if self._queued is not None:
                self._queued.inc()
        self._publish_depth()
        return ticket

    def on_capacity(self) -> None:
        """Broker callback: spare bytes appeared, admit what now fits."""
        self._drain()
        self._publish_depth()

    def _drain(self) -> None:
        """Admit strictly head-of-line while the head's minimum fits."""
        while self.queue and self._fits(self.queue[0]):
            self._grant(self.queue.pop(0))

    def _fits(self, ticket: AdmissionTicket) -> bool:
        spare = self.broker.spare_bytes()
        return spare is None or ticket.min_bytes <= spare

    def _grant(self, ticket: AdmissionTicket) -> None:
        spare = self.broker.spare_bytes()
        if spare is None:
            granted = ticket.max_bytes
        else:
            granted = min(ticket.max_bytes, max(ticket.min_bytes, spare))
        ticket.lease = self.broker.lease(ticket.name, granted,
                                         min_bytes=ticket.min_bytes,
                                         max_bytes=ticket.max_bytes,
                                         tenant=ticket.tenant)
        ticket.granted = True
        ticket.admitted_at = self.sim.now
        self._audit(DECISION_ADMIT, ticket, granted_bytes=granted,
                    waited=ticket.waited)
        if self._admitted is not None:
            self._admitted.inc()
        if self._wait_hist is not None:
            self._wait_hist.observe(ticket.waited)
        if ticket.event is not None:
            ticket.event.succeed()

    def _audit(self, kind: str, ticket: AdmissionTicket,
               **fields: object) -> None:
        if self.telemetry is None:
            return
        if ticket.tenant:
            fields["tenant"] = ticket.tenant
        self.telemetry.audit.record(
            kind, ticket.name, self.sim.now,
            min_bytes=ticket.min_bytes, max_bytes=ticket.max_bytes,
            **fields)

    def _publish_depth(self) -> None:
        if self._depth_gauge is not None:
            self._depth_gauge.set(len(self.queue))

    def __repr__(self) -> str:
        return (f"AdmissionController({self.policy}, "
                f"{len(self.queue)} queued)")
