"""Hierarchical memory governance: one global pool, per-query leases.

Two layers:

* :class:`MemoryLease` — one query's memory budget.  The leaf layer is
  byte-accurate per-owner accounting (hash tables, in-memory temps) with
  exactly the semantics the old per-query ``MemoryManager`` had — same
  arithmetic, same error messages — so a lease drawn from an unbounded
  broker with ``min == max == budget`` behaves bit-identically to the
  old private manager.  On top of that a lease may carry *headroom*
  (``max_bytes`` above its current ``total_bytes``): reservations that
  would not fit the current budget pull the shortfall from the broker's
  spare pool on demand, and bytes *offered* back by the broker (another
  query completed) arrive through :meth:`MemoryLease.grant`, bumping
  ``grow_revision`` and notifying subscribers — the signal the DQS uses
  to re-run its planning phase with the larger budget.

* :class:`MemoryBroker` — the per-mediator pool the leases draw from.
  An *unbounded* broker (``total_bytes=None``, the default every
  single-query ``World`` gets) grants every pull and never shrinks, so
  legacy behavior is unchanged.  A *governed* broker enforces
  ``sum(lease totals) <= pool total``, reclaims idle headroom when
  another query is waiting, and redistributes released bytes —
  admissions first, then grow offers to running leases in registration
  order.

Demand pulls (a hash table growing page by page) are deliberately *not*
audited — they would flood the decision log.  Only broker-initiated
offers (``lease-grow``), reclamations (``lease-shrink``) and admission
events appear in the audit log.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.common.errors import SimulationError
from repro.exec import Kernel
from repro.observability.audit import (
    DECISION_LEASE_GROW,
    DECISION_LEASE_SHRINK,
)

if TYPE_CHECKING:
    from repro.observability.registry import (
        GaugeMetric,
        MetricsRegistry,
        NullMetric,
    )
    from repro.observability.telemetry import Telemetry
    from repro.resources.admission import AdmissionController

    Gauge = GaugeMetric | NullMetric

#: callback signature for grow notifications: ``(granted, new_total)``.
GrowCallback = Callable[[int, int], None]


class MemoryLease:
    """Byte-accurate accounting of one query's memory budget.

    Drop-in replacement for the old ``MemoryManager`` (which is now an
    alias of this class): ``total_bytes`` / ``used_bytes`` /
    ``peak_bytes`` / ``available_bytes`` and the reserve/grow/release
    protocol are unchanged.  ``min_bytes`` / ``max_bytes`` bound what
    the broker may reclaim from, or offer to, this lease; both default
    to ``total_bytes``, which makes the lease exactly as static as the
    old manager.
    """

    def __init__(self, total_bytes: int, *,
                 broker: Optional["MemoryBroker"] = None,
                 name: str = "query",
                 min_bytes: Optional[int] = None,
                 max_bytes: Optional[int] = None,
                 tenant: str = "") -> None:
        if total_bytes <= 0:
            raise SimulationError(f"memory budget must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self.used_bytes = 0
        self.peak_bytes = 0
        self._allocations: dict[str, int] = {}
        self.broker = broker
        self.name = name
        #: owning tenant ("" outside the multi-tenant service).
        self.tenant = tenant
        self.min_bytes = total_bytes if min_bytes is None else min_bytes
        self.max_bytes = total_bytes if max_bytes is None else max_bytes
        if not self.min_bytes <= total_bytes <= self.max_bytes:
            raise SimulationError(
                f"lease bounds violated for {name!r}: "
                f"{self.min_bytes} <= {total_bytes} <= {self.max_bytes}")
        #: bumped on every broker-initiated grow; the DQS compares this
        #: against the revision it last planned at.
        self.grow_revision = 0
        #: True once the broker took the lease back (query finished).
        self.released = False
        self._grow_subscribers: List[GrowCallback] = []
        self._used_gauge: Optional["Gauge"] = None
        self._peak_gauge: Optional["Gauge"] = None
        self._avail_gauge: Optional["Gauge"] = None

    # -- leaf accounting (old MemoryManager semantics) ----------------------
    @property
    def available_bytes(self) -> int:
        return self.total_bytes - self.used_bytes

    def would_fit(self, num_bytes: int) -> bool:
        """True if ``num_bytes`` more could be reserved right now.

        Counts the broker headroom a demand pull could claim, so an
        M-schedulability check sees the budget the query could actually
        reach — not just the bytes already leased.
        """
        return num_bytes <= self.available_bytes + self._headroom()

    def reserve(self, owner: str, num_bytes: int) -> None:
        """Reserve memory for ``owner``; caller must check :meth:`would_fit`."""
        if num_bytes < 0:
            raise SimulationError(f"negative reservation: {num_bytes}")
        if owner in self._allocations:
            raise SimulationError(f"owner {owner!r} already holds a reservation")
        if num_bytes > self.available_bytes and \
                not self._pull(num_bytes - self.available_bytes):
            raise SimulationError(
                f"reservation of {num_bytes} for {owner!r} exceeds available "
                f"{self.available_bytes}")
        self._allocations[owner] = num_bytes
        self.used_bytes += num_bytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self._publish()

    def try_grow(self, owner: str, delta_bytes: int) -> bool:
        """Grow an existing reservation; False if it does not fit."""
        if delta_bytes < 0:
            raise SimulationError(f"negative growth: {delta_bytes}")
        if owner not in self._allocations:
            raise SimulationError(f"owner {owner!r} holds no reservation")
        if delta_bytes > self.available_bytes and \
                not self._pull(delta_bytes - self.available_bytes):
            return False
        self._allocations[owner] += delta_bytes
        self.used_bytes += delta_bytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self._publish()
        return True

    def release(self, owner: str) -> int:
        """Free ``owner``'s reservation; returns the bytes freed.

        Under a governed broker this is the reclamation point: freed
        bytes above the lease's minimum are taken back into the pool
        when another query is waiting for them.
        """
        try:
            num_bytes = self._allocations.pop(owner)
        except KeyError:
            raise SimulationError(f"owner {owner!r} holds no reservation") from None
        self.used_bytes -= num_bytes
        self._publish()
        if self.broker is not None and not self.released:
            self.broker.reclaim(self)
        return num_bytes

    def held_by(self, owner: str) -> int:
        """Bytes currently reserved by ``owner`` (0 if none)."""
        return self._allocations.get(owner, 0)

    # -- broker protocol ----------------------------------------------------
    def subscribe_grow(self, callback: GrowCallback) -> None:
        """Register for broker-initiated grow offers (DQP wake-up hook)."""
        self._grow_subscribers.append(callback)

    def grant(self, delta_bytes: int) -> None:
        """Accept ``delta_bytes`` offered by the broker (grow event)."""
        if delta_bytes <= 0:
            return
        self.total_bytes += delta_bytes
        self.grow_revision += 1
        self._publish()
        for callback in self._grow_subscribers:
            callback(delta_bytes, self.total_bytes)

    def _headroom(self) -> int:
        """Bytes a demand pull could claim beyond the current total."""
        if self.broker is None or self.released:
            return 0
        room = self.max_bytes - self.total_bytes
        if room <= 0:
            return 0
        spare = self.broker.spare_bytes()
        return room if spare is None else min(room, spare)

    def _pull(self, delta_bytes: int) -> bool:
        """Demand-pull ``delta_bytes`` from the broker (no grow event)."""
        if delta_bytes > self._headroom():
            return False
        assert self.broker is not None
        return self.broker.expand_lease(self, delta_bytes)

    def _shrink_to(self, target_bytes: int) -> int:
        """Drop headroom down to ``target_bytes``; returns bytes freed."""
        target_bytes = max(target_bytes, self.used_bytes)
        freed = self.total_bytes - target_bytes
        if freed > 0:
            self.total_bytes = target_bytes
            self._publish()
        return max(freed, 0)

    # -- observability ------------------------------------------------------
    def attach_metrics(self, registry: "MetricsRegistry",
                       prefix: str = "memory") -> None:
        """Export used/peak/available gauges under ``prefix``.

        No-op on a disabled registry, keeping the reserve/grow/release
        hot path a single ``is not None`` check when telemetry is off.
        """
        if not registry.enabled:
            return
        self._used_gauge = registry.gauge(
            f"{prefix}.used_bytes", help="memory reserved by live owners")
        self._peak_gauge = registry.gauge(
            f"{prefix}.peak_bytes", help="high-water mark of used bytes")
        self._avail_gauge = registry.gauge(
            f"{prefix}.available_bytes", help="lease bytes not yet reserved")
        self._publish()

    def _publish(self) -> None:
        if self._used_gauge is None:
            return
        assert self._peak_gauge is not None and self._avail_gauge is not None
        self._used_gauge.set(self.used_bytes)
        self._peak_gauge.set(self.peak_bytes)
        self._avail_gauge.set(self.available_bytes)

    def __repr__(self) -> str:
        return (f"MemoryLease({self.name!r}, {self.used_bytes}/"
                f"{self.total_bytes} used, peak={self.peak_bytes})")


class MemoryBroker:
    """The global mediator memory pool leases are drawn from.

    ``total_bytes=None`` makes the broker *unbounded*: every pull is
    granted, nothing is ever reclaimed, and spare is unlimited — the
    configuration every single-query ``World`` gets, preserving legacy
    behavior exactly.  A governed broker (``total_bytes`` set) enforces
    the pool invariant and drives redistribution.
    """

    def __init__(self, total_bytes: Optional[int] = None, *,
                 sim: Optional[Kernel] = None,
                 telemetry: Optional["Telemetry"] = None,
                 name: str = "mediator") -> None:
        if total_bytes is not None and total_bytes <= 0:
            raise SimulationError(
                f"memory pool must be positive, got {total_bytes}")
        self.total_bytes = total_bytes
        self.name = name
        self.sim = sim
        self.telemetry = telemetry
        self.leases: List[MemoryLease] = []
        self._admission: Optional["AdmissionController"] = None
        self._leased_gauge: Optional["Gauge"] = None
        self._spare_gauge: Optional["Gauge"] = None
        self._active_gauge: Optional["Gauge"] = None
        if telemetry is not None:
            self._attach_gauges()

    # -- pool arithmetic ----------------------------------------------------
    @property
    def governed(self) -> bool:
        return self.total_bytes is not None

    @property
    def leased_bytes(self) -> int:
        return sum(lease.total_bytes for lease in self.leases)

    def spare_bytes(self) -> Optional[int]:
        """Unleased pool bytes; None when the pool is unbounded."""
        if self.total_bytes is None:
            return None
        return self.total_bytes - self.leased_bytes

    # -- lease lifecycle ----------------------------------------------------
    def lease(self, name: str, num_bytes: int, *,
              min_bytes: Optional[int] = None,
              max_bytes: Optional[int] = None,
              tenant: str = "") -> MemoryLease:
        """Carve a new lease out of the pool."""
        spare = self.spare_bytes()
        if spare is not None and num_bytes > spare:
            raise SimulationError(
                f"lease of {num_bytes} for {name!r} exceeds spare pool {spare}")
        lease = MemoryLease(num_bytes, broker=self, name=name,
                            min_bytes=min_bytes, max_bytes=max_bytes,
                            tenant=tenant)
        self.leases.append(lease)
        self._publish()
        return lease

    def carve_even(self, count: int, *, name_prefix: str = "worker",
                   tenant: str = "") -> List[MemoryLease]:
        """Split the spare pool into ``count`` equal *static* leases.

        The carve-out primitive for sharded worker processes: each of the
        ``count`` leases gets ``spare // count`` bytes with
        ``min == max`` (a worker's budget is fixed for its lifetime; the
        governance *inside* the shard is the worker's own broker, built
        over its carve).  Remainder bytes from the integer division stay
        in the pool.  On an unbounded broker there is nothing to split —
        workers inherit unboundedness — so no leases are carved and an
        empty list comes back.

        Return a dead worker's lease with :meth:`release` and re-carve
        its replacement with :meth:`lease` at the same size.
        """
        if count < 1:
            raise SimulationError(f"cannot carve into {count} shares")
        spare = self.spare_bytes()
        if spare is None:
            return []
        share = spare // count
        if share <= 0:
            raise SimulationError(
                f"pool spare {spare} cannot cover {count} worker "
                f"carve-outs (needs >= {count} bytes)")
        return [self.lease(f"{name_prefix}-{index}", share, tenant=tenant)
                for index in range(count)]

    def expand_lease(self, lease: MemoryLease, delta_bytes: int) -> bool:
        """Demand pull: grow ``lease`` by ``delta_bytes`` if spare allows.

        No audit record and no grow event — the lease asked for the
        bytes itself (a hash table growing page by page); only
        broker-initiated offers are scheduling decisions worth logging.
        """
        if delta_bytes <= 0:
            return True
        if lease.released:
            return False
        spare = self.spare_bytes()
        if spare is not None and delta_bytes > spare:
            return False
        lease.total_bytes += delta_bytes
        self._publish()
        return True

    def release(self, lease: MemoryLease) -> None:
        """Return a whole lease to the pool (query finished)."""
        if lease.released:
            return
        lease.released = True
        self.leases.remove(lease)
        self._publish()
        if self.governed:
            self._redistribute()

    def reclaim(self, lease: MemoryLease) -> None:
        """Take back idle headroom after ``lease`` freed a reservation.

        Only acts on a governed pool, only down to
        ``max(used, min_bytes)``, and only when somebody is actually
        waiting (a queued admission or a growable lease) — otherwise the
        query keeps its budget, matching the paper's static model.
        """
        if not self.governed or lease.released:
            return
        target = max(lease.used_bytes, lease.min_bytes)
        if lease.total_bytes <= target or not self._demand_exists(lease):
            return
        freed = lease._shrink_to(target)
        if freed <= 0:
            return
        self._publish()
        self._audit(DECISION_LEASE_SHRINK, lease.name,
                    freed_bytes=freed, memory_total_bytes=lease.total_bytes,
                    memory_used_bytes=lease.used_bytes)
        self._redistribute()

    # -- redistribution -----------------------------------------------------
    def attach_admission(self, controller: "AdmissionController") -> None:
        self._admission = controller

    def bind(self, sim: Kernel, telemetry: "Telemetry") -> None:
        """Late-bind kernel and telemetry (broker built before the World)."""
        self.sim = sim
        self.telemetry = telemetry
        self._attach_gauges()

    def _demand_exists(self, releasing: MemoryLease) -> bool:
        if self._admission is not None and self._admission.queue_depth > 0:
            return True
        return any(lease is not releasing and not lease.released
                   and lease._grow_subscribers
                   and lease.total_bytes < lease.max_bytes
                   for lease in self.leases)

    def _redistribute(self) -> None:
        """Hand spare bytes out: admissions first, then grow offers."""
        if not self.governed:
            return
        if self._admission is not None:
            self._admission.on_capacity()
        for lease in list(self.leases):
            spare = self.spare_bytes()
            if spare is None or spare <= 0:
                break
            if lease.released or not lease._grow_subscribers:
                continue
            offer = min(lease.max_bytes - lease.total_bytes, spare)
            if offer <= 0:
                continue
            self._audit(DECISION_LEASE_GROW, lease.name,
                        granted_bytes=offer,
                        memory_total_bytes=lease.total_bytes + offer,
                        memory_used_bytes=lease.used_bytes)
            lease.grant(offer)
            self._publish()

    # -- observability ------------------------------------------------------
    def _audit(self, kind: str, subject: str, **fields: object) -> None:
        if self.telemetry is None:
            return
        time = self.sim.now if self.sim is not None else 0.0
        self.telemetry.audit.record(kind, subject, time, **fields)

    def _attach_gauges(self) -> None:
        if self.telemetry is None or not self.telemetry.registry.enabled:
            return
        registry = self.telemetry.registry
        pool = registry.gauge(f"broker.{self.name}.pool_bytes",
                              help="global pool size (0 when unbounded)")
        pool.set(self.total_bytes or 0)
        self._leased_gauge = registry.gauge(
            f"broker.{self.name}.leased_bytes",
            help="bytes currently leased to queries")
        self._spare_gauge = registry.gauge(
            f"broker.{self.name}.spare_bytes",
            help="unleased pool bytes (0 when unbounded)")
        self._active_gauge = registry.gauge(
            f"broker.{self.name}.active_leases", help="live leases")
        self._publish()

    def _publish(self) -> None:
        if self._leased_gauge is None:
            return
        assert self._spare_gauge is not None and self._active_gauge is not None
        self._leased_gauge.set(self.leased_bytes)
        self._spare_gauge.set(self.spare_bytes() or 0)
        self._active_gauge.set(len(self.leases))

    def __repr__(self) -> str:
        pool = "unbounded" if self.total_bytes is None else self.total_bytes
        return (f"MemoryBroker({self.name!r}, pool={pool}, "
                f"{len(self.leases)} leases)")
