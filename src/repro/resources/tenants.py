"""Tenant identity, priorities and quotas for the always-on service.

The one-shot front-ends (``repro run``, ``repro live``, ``repro
multiquery``) execute on behalf of a single implicit tenant, so the
resource plane never needed names.  The :mod:`repro.service` daemon does:
every submission belongs to a *tenant*, and the tenant carries the
scheduling identity that outlives any one query — its admission
priority, its concurrency quota, and its cap on declared memory.

* :class:`TenantSpec` — the static configuration (name, priority,
  quotas), parseable from the CLI's ``name:priority[:max_active
  [:memory]]`` shorthand;
* :class:`TenantAccount` — live accounting for one tenant across the
  unbounded submission stream (in-flight, completed, rejected,
  admission-wait totals, declared lease bytes);
* :class:`TenantRegistry` — the lookup + quota gate the service calls
  once per submission.  Quota violations raise :class:`QuotaExceeded`
  (HTTP 429 at the service boundary) *before* anything touches the
  kernel or the broker.

Quotas are enforced on *declared* demand (a submission's ``max_bytes``),
not on live lease totals: the check must be answerable at submit time,
before admission decides what the query actually gets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError


class QuotaExceeded(Exception):
    """A submission was refused by its tenant's quota (not by memory)."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant configuration."""

    name: str
    #: admission priority for this tenant's submissions (higher first
    #: under the ``priority`` admission policy).
    priority: float = 0.0
    #: max submissions in flight (queued + running); None = unlimited.
    max_active: Optional[int] = None
    #: cap on the sum of in-flight declared ``max_bytes``; None = unlimited.
    memory_limit_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.max_active is not None and self.max_active < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: max_active must be >= 1, "
                f"got {self.max_active}")
        if self.memory_limit_bytes is not None and self.memory_limit_bytes <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: memory_limit_bytes must be positive, "
                f"got {self.memory_limit_bytes}")

    @classmethod
    def parse(cls, text: str) -> "TenantSpec":
        """Parse the CLI shorthand ``name:priority[:max_active[:memory]]``.

        Empty segments keep their defaults, so ``acme:::64M`` is a tenant
        with default priority, unlimited concurrency, and a 64 MiB cap.
        """
        from repro.cli import _parse_size

        parts = text.split(":")
        if not parts[0] or len(parts) > 4:
            raise ConfigurationError(
                f"bad tenant spec {text!r}; expected "
                "NAME[:PRIORITY[:MAX_ACTIVE[:MEMORY]]]")
        priority = float(parts[1]) if len(parts) > 1 and parts[1] else 0.0
        max_active = (int(parts[2])
                      if len(parts) > 2 and parts[2] else None)
        memory = (_parse_size(parts[3], "tenant memory")
                  if len(parts) > 3 and parts[3] else None)
        return cls(name=parts[0], priority=priority, max_active=max_active,
                   memory_limit_bytes=memory)


@dataclass
class TenantAccount:
    """Live accounting for one tenant across the submission stream."""

    spec: TenantSpec
    #: submissions currently queued or running.
    in_flight: int = 0
    #: sum of declared ``max_bytes`` across in-flight submissions.
    declared_bytes: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: refused by quota (the service counts drain-time 503s separately).
    rejected: int = 0
    total_wait_s: float = 0.0
    wait_samples: int = 0
    total_latency_s: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mean_wait_s(self) -> float:
        return (self.total_wait_s / self.wait_samples
                if self.wait_samples else 0.0)

    @property
    def mean_latency_s(self) -> float:
        done = self.completed + self.failed
        return self.total_latency_s / done if done else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view for service snapshots and ``repro top``."""
        return {
            "name": self.spec.name,
            "priority": self.spec.priority,
            "max_active": self.spec.max_active,
            "memory_limit_bytes": self.spec.memory_limit_bytes,
            "in_flight": self.in_flight,
            "declared_bytes": self.declared_bytes,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "mean_wait_s": self.mean_wait_s,
            "mean_latency_s": self.mean_latency_s,
        }


class TenantRegistry:
    """Tenant lookup and the per-submission quota gate.

    Unknown tenants are auto-registered with ``default_spec``-derived
    settings unless the registry is ``strict`` (then submitting as an
    unregistered tenant raises :class:`QuotaExceeded`, surfaced as an
    HTTP 4xx by the service).
    """

    def __init__(self, specs: Optional[List[TenantSpec]] = None, *,
                 default_priority: float = 0.0,
                 strict: bool = False) -> None:
        self.strict = strict
        self.default_priority = default_priority
        self._accounts: Dict[str, TenantAccount] = {}
        for spec in specs or []:
            self.register(spec)

    def register(self, spec: TenantSpec) -> TenantAccount:
        if spec.name in self._accounts:
            raise ConfigurationError(f"tenant {spec.name!r} registered twice")
        account = TenantAccount(spec=spec)
        self._accounts[spec.name] = account
        return account

    def get(self, name: str) -> Optional[TenantAccount]:
        return self._accounts.get(name)

    def account(self, name: str) -> TenantAccount:
        """The tenant's account, auto-registering unless strict."""
        found = self._accounts.get(name)
        if found is not None:
            return found
        if self.strict:
            raise QuotaExceeded(name, "unknown tenant (strict registry)")
        return self.register(
            TenantSpec(name=name, priority=self.default_priority))

    # -- submission lifecycle ------------------------------------------------
    def begin(self, name: str, max_bytes: int) -> TenantAccount:
        """Quota-check and account one new submission (may raise)."""
        account = self.account(name)
        spec = account.spec
        if spec.max_active is not None \
                and account.in_flight >= spec.max_active:
            account.rejected += 1
            raise QuotaExceeded(
                name, f"{account.in_flight} submissions in flight "
                f"(quota {spec.max_active})")
        if spec.memory_limit_bytes is not None \
                and account.declared_bytes + max_bytes > spec.memory_limit_bytes:
            account.rejected += 1
            raise QuotaExceeded(
                name, f"declared memory {account.declared_bytes + max_bytes} "
                f"would exceed quota {spec.memory_limit_bytes}")
        account.submitted += 1
        account.in_flight += 1
        account.declared_bytes += max_bytes
        return account

    def finish(self, account: TenantAccount, max_bytes: int, *, ok: bool,
               waited_s: float = 0.0, latency_s: float = 0.0) -> None:
        """Account one finished (or failed) submission."""
        account.in_flight -= 1
        account.declared_bytes -= max_bytes
        if ok:
            account.completed += 1
        else:
            account.failed += 1
        account.total_wait_s += waited_s
        account.wait_samples += 1
        account.total_latency_s += latency_s

    # -- views ---------------------------------------------------------------
    def priority_for(self, name: str,
                     override: Optional[float] = None) -> float:
        """A submission's effective priority (explicit beats tenant)."""
        if override is not None:
            return override
        account = self._accounts.get(name)
        return account.spec.priority if account is not None \
            else self.default_priority

    def snapshot(self) -> List[Dict[str, object]]:
        """Name-sorted per-tenant accounting (JSON-safe)."""
        return [self._accounts[name].to_dict()
                for name in sorted(self._accounts)]

    def __len__(self) -> int:
        return len(self._accounts)

    def __repr__(self) -> str:
        return (f"TenantRegistry({len(self._accounts)} tenants, "
                f"strict={self.strict})")
