"""Dynamic-programming join enumeration producing bushy trees.

Enumerates connected sub-queries by subset (bitmask) dynamic programming,
splitting each connected set S into connected complementary pairs (L, R)
with at least one join edge between them — cross products are never
considered, as in classical System-R-descended optimizers.  Bushy trees
are considered in full ("bushy plans are the most general and the most
appealing", Section 2.2).

The winning (sub-)plan orients each join with the **smaller estimated
side as the build** (left child), which is both the classical choice and
what macro-expansion expects.
"""

from __future__ import annotations

from repro.common.errors import OptimizerError
from repro.optimizer.cost import CostModel
from repro.query.tree import JoinTree, Query

#: Hard cap: subset DP is exponential; beyond this, refuse rather than hang.
MAX_RELATIONS = 14


class DynamicProgrammingOptimizer:
    """Exhaustive bushy DP optimizer over connected subsets."""

    def __init__(self, cost_model: CostModel):
        self.cost_model = cost_model

    def optimize(self, query: Query) -> JoinTree:
        """Return the cheapest bushy join tree for ``query``."""
        names = query.relation_names
        n = len(names)
        if n > MAX_RELATIONS:
            raise OptimizerError(
                f"query has {n} relations; DP supports at most {MAX_RELATIONS}")
        if n == 1:
            return JoinTree.leaf(names[0])

        index = {name: i for i, name in enumerate(names)}
        adjacency = [0] * n
        selectivity: dict[tuple[int, int], float] = {}
        for a, b, sel in query.join_edges():
            ia, ib = index[a], index[b]
            adjacency[ia] |= 1 << ib
            adjacency[ib] |= 1 << ia
            selectivity[(min(ia, ib), max(ia, ib))] = sel

        cards = [query.catalog.relation(name).cardinality for name in names]
        best_cost: dict[int, float] = {}
        best_tree: dict[int, JoinTree] = {}
        set_cardinality: dict[int, float] = {}

        for i, name in enumerate(names):
            mask = 1 << i
            best_cost[mask] = self.cost_model.scan_cost(name)
            best_tree[mask] = JoinTree.leaf(name)
            set_cardinality[mask] = float(cards[i])

        full = (1 << n) - 1
        for mask in range(1, full + 1):
            if mask.bit_count() < 2 or not self._connected(mask, adjacency):
                continue
            set_cardinality[mask] = self._cardinality(mask, cards, selectivity)
            self._solve_set(mask, adjacency, set_cardinality, best_cost, best_tree)

        if full not in best_tree:
            raise OptimizerError("no connected plan covers the whole query "
                                 "(disconnected join graph?)")
        return best_tree[full]

    # -- internals ---------------------------------------------------------
    def _solve_set(self, mask: int, adjacency: list[int],
                   set_cardinality: dict[int, float],
                   best_cost: dict[int, float],
                   best_tree: dict[int, JoinTree]) -> None:
        """Try every connected complementary split of ``mask``."""
        best: float | None = None
        best_pair: tuple[int, int] | None = None
        # Enumerate proper non-empty subsets of mask; visit each unordered
        # pair once by requiring the lowest set bit of mask to stay in left.
        lowest = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            left, right = sub, mask ^ sub
            if left & lowest:
                if (left in best_cost and right in best_cost
                        and self._edge_between(left, right, adjacency)):
                    out_card = set_cardinality[mask]
                    for build, probe in ((left, right), (right, left)):
                        cost = (best_cost[build] + best_cost[probe]
                                + self.cost_model.join_cost(
                                    set_cardinality[build],
                                    set_cardinality[probe],
                                    out_card))
                        # Tie-break on build-side size: a smaller hash
                        # table is strictly better for memory.
                        better = best is None or cost < best * (1 - 1e-12)
                        tied = (best is not None
                                and abs(cost - best) <= best * 1e-12
                                and set_cardinality[build]
                                < set_cardinality[best_pair[0]])
                        if better or tied:
                            best = cost
                            best_pair = (build, probe)
            sub = (sub - 1) & mask
        if best is not None and best_pair is not None:
            build, probe = best_pair
            best_cost[mask] = best
            best_tree[mask] = JoinTree.join(best_tree[build], best_tree[probe])

    @staticmethod
    def _connected(mask: int, adjacency: list[int]) -> bool:
        start = mask & -mask
        seen = start
        frontier = start
        while frontier:
            bit_index = (frontier & -frontier).bit_length() - 1
            frontier &= frontier - 1
            neighbours = adjacency[bit_index] & mask & ~seen
            seen |= neighbours
            frontier |= neighbours
        return seen == mask

    @staticmethod
    def _edge_between(left: int, right: int, adjacency: list[int]) -> bool:
        remaining = left
        while remaining:
            bit_index = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            if adjacency[bit_index] & right:
                return True
        return False

    @staticmethod
    def _cardinality(mask: int, cards: list[float],
                     selectivity: dict[tuple[int, int], float]) -> float:
        result = 1.0
        members = []
        remaining = mask
        while remaining:
            bit_index = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            members.append(bit_index)
            result *= cards[bit_index]
        for (a, b), sel in selectivity.items():
            if mask >> a & 1 and mask >> b & 1:
                result *= sel
        return result
