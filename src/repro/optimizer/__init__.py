"""Classical compile-time optimizer.

The paper's experiment query "was generated using the algorithm of [14]
and optimized in a classical dynamic programming query optimizer"
(Section 5.1.1).  This package provides exactly that: a cost model priced
in CPU instructions (:mod:`repro.optimizer.cost`) and a dynamic-programming
enumerator over connected sub-queries producing bushy hash-join trees
(:mod:`repro.optimizer.dp`).
"""

from repro.optimizer.cost import CostModel, OperatorCosts
from repro.optimizer.dp import DynamicProgrammingOptimizer

__all__ = ["CostModel", "DynamicProgrammingOptimizer", "OperatorCosts"]
