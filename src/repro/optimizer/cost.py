"""CPU-instruction cost model for hash-join plans.

Costs use the per-tuple instruction counts of Table 1 (move a tuple: 100,
hash-table search: 100, produce a result tuple: 50).  The optimizer only
needs *relative* plan costs, so network and disk terms — identical across
join orders for a given query — are omitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.common.errors import OptimizerError
from repro.query.tree import JoinTree


@dataclass(frozen=True)
class OperatorCosts:
    """Per-tuple instruction counts (defaults are Table 1 of the paper)."""

    move_tuple: float = 100.0
    hash_search: float = 100.0
    produce_tuple: float = 50.0

    def __post_init__(self):
        if min(self.move_tuple, self.hash_search, self.produce_tuple) < 0:
            raise OptimizerError("operator costs must be non-negative")


class CostModel:
    """Prices logical join trees in CPU instructions."""

    def __init__(self, catalog: Catalog, costs: OperatorCosts | None = None):
        self.catalog = catalog
        self.costs = costs if costs is not None else OperatorCosts()

    def scan_cost(self, relation_name: str) -> float:
        """Instructions to stream one base relation into the mediator."""
        relation = self.catalog.relation(relation_name)
        return relation.cardinality * self.costs.move_tuple

    def join_cost(self, build_cardinality: float, probe_cardinality: float,
                  output_cardinality: float) -> float:
        """Instructions for one hash join (build + probe + produce)."""
        if min(build_cardinality, probe_cardinality, output_cardinality) < 0:
            raise OptimizerError("negative cardinality in join cost")
        build = build_cardinality * self.costs.move_tuple
        probe = probe_cardinality * self.costs.hash_search
        produce = output_cardinality * self.costs.produce_tuple
        return build + probe + produce

    def tree_cost(self, tree: JoinTree) -> float:
        """Total instructions to execute ``tree`` (scans + all joins)."""
        total = sum(self.scan_cost(leaf.relation) for leaf in tree.leaves())
        for node in tree.inner_nodes():
            build_card = self.catalog.estimate_cardinality(node.left.relations())
            probe_card = self.catalog.estimate_cardinality(node.right.relations())
            out_card = self.catalog.estimate_cardinality(node.relations())
            total += self.join_cost(build_card, probe_card, out_card)
        return total
