"""Light-weight statistics collectors used across the runtime."""

from __future__ import annotations

import math
from typing import Optional

from repro.exec import Kernel


class Counter:
    """A monotonically growing tally."""

    def __init__(self, initial: float = 0):
        self.value = initial

    def add(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"Counter.add() takes non-negative amounts, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class WelfordStat:
    """Streaming mean / variance via Welford's algorithm."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 with fewer than 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return f"WelfordStat(n={self.count}, mean={self.mean:.6g})"


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`record` with the *new* value whenever the signal changes;
    the previous value is weighted by the time it was held.
    """

    def __init__(self, sim: Kernel):
        self.sim = sim
        self._last_time = sim.now
        self._last_value: Optional[float] = None
        self._weighted_sum = 0.0
        self._total_time = 0.0

    def record(self, value: float) -> None:
        now = self.sim.now
        if self._last_value is not None:
            span = now - self._last_time
            self._weighted_sum += self._last_value * span
            self._total_time += span
        self._last_time = now
        self._last_value = value

    @property
    def current(self) -> Optional[float]:
        return self._last_value

    def mean(self) -> float:
        """Time-weighted mean up to the last recorded change."""
        weighted_sum = self._weighted_sum
        total_time = self._total_time
        if self._last_value is not None:
            span = self.sim.now - self._last_time
            weighted_sum += self._last_value * span
            total_time += span
        return weighted_sum / total_time if total_time > 0 else 0.0

    def __repr__(self) -> str:
        return f"TimeWeightedStat(mean={self.mean():.6g}, current={self.current})"
