"""Discrete-event simulation kernel and hardware resource models.

This package is the substrate the paper's prototype ran on: a virtual
machine with a CPU rated in MIPS, a single local disk, a network link and a
small LRU I/O cache (Table 1 of the paper).  The kernel itself
(:mod:`repro.sim.engine`) is a minimal generator-based process simulator in
the style of SimPy: processes yield events and the kernel resumes them when
those events trigger.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    SimEvent,
    Simulator,
    Timeout,
)
from repro.sim.resources import CPU, Disk, NetworkLink, Resource, Store
from repro.sim.cache import LRUPageCache
from repro.sim.stats import Counter, TimeWeightedStat, WelfordStat
from repro.sim.tracing import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CPU",
    "Counter",
    "Disk",
    "Interrupt",
    "LRUPageCache",
    "NetworkLink",
    "Process",
    "Resource",
    "SimEvent",
    "Simulator",
    "Store",
    "TimeWeightedStat",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "WelfordStat",
]
