"""LRU page cache (the paper's 8-page I/O cache, Table 1).

The cache maps ``(extent, page)`` keys to resident pages.  The buffer
manager consults it before issuing disk reads and inserts pages after
reads and writes; with only 8 pages it mostly provides write-behind
clustering and read-ahead reuse within a chunk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.common.errors import SimulationError
from repro.sim.stats import Counter

PageKey = tuple[int, int]


class LRUPageCache:
    """Fixed-capacity LRU cache of page identities (contents are never real)."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 1:
            raise SimulationError(f"cache needs >= 1 page, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[PageKey, None] = OrderedDict()
        self.hits = Counter()
        self.misses = Counter()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pages

    def lookup(self, extent: int, page: int) -> bool:
        """Check residency, update recency, and count hit/miss."""
        key = (extent, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits.add(1)
            return True
        self.misses.add(1)
        return False

    def insert(self, extent: int, page: int) -> Optional[PageKey]:
        """Insert a page; returns the evicted key, if an eviction occurred."""
        key = (extent, page)
        evicted = None
        if key in self._pages:
            self._pages.move_to_end(key)
            return None
        if len(self._pages) >= self.capacity_pages:
            evicted, _ = self._pages.popitem(last=False)
        self._pages[key] = None
        return evicted

    def invalidate_extent(self, extent: int) -> int:
        """Drop every page of ``extent`` (e.g. when a temp is destroyed)."""
        doomed = [key for key in self._pages if key[0] == extent]
        for key in doomed:
            del self._pages[key]
        return len(doomed)

    def resident_pages(self) -> Iterator[PageKey]:
        """Iterate resident pages from least to most recently used."""
        return iter(self._pages)

    def hit_ratio(self) -> float:
        """Fraction of lookups that hit; 0 when no lookups happened."""
        total = self.hits.value + self.misses.value
        return self.hits.value / total if total else 0.0

    def __repr__(self) -> str:
        return (f"LRUPageCache({len(self._pages)}/{self.capacity_pages} pages, "
                f"hit_ratio={self.hit_ratio():.2f})")
