"""Hardware resource models: generic resources, CPU, disk, network link.

All models are driven by Table 1 of the paper (CPU speed in MIPS, disk
latency / seek time / transfer rate, network bandwidth, per-I/O and
per-message CPU costs).  Each model exposes generator helpers meant to be
``yield from``-ed inside simulation processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.common.errors import SimulationError
from repro.exec import Kernel, SimEvent
from repro.sim.stats import Counter, TimeWeightedStat


class Resource:
    """A FIFO resource with fixed capacity (SimPy-style).

    ``request()`` returns an event that succeeds when a slot is granted;
    ``release()`` frees one slot and wakes the next waiter.
    """

    def __init__(self, sim: Kernel, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        # Request events are minted on the hot path (one per CPU slice);
        # the debug name is precomputed once instead of per event.
        self._request_name = f"request:{self.name}"
        self._in_use = 0
        self._waiters: deque[SimEvent] = deque()
        self.occupancy = TimeWeightedStat(sim)

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def request(self) -> SimEvent:
        """An event that succeeds once a slot is granted to the caller."""
        event = self.sim.event(name=self._request_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            self.occupancy.record(self._in_use)
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot; hands it directly to the oldest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            waiter = self._waiters.popleft()
            # Slot transfers to the waiter; in_use count is unchanged.
            waiter.succeed()
        else:
            self._in_use -= 1
            self.occupancy.record(self._in_use)

    def __repr__(self) -> str:
        return (f"Resource({self.name!r}, {self._in_use}/{self.capacity} used, "
                f"{len(self._waiters)} waiting)")


class Store:
    """A bounded FIFO buffer of items with blocking put/get events."""

    def __init__(self, sim: Kernel, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        # Same hot-path consideration as Resource._request_name.
        self._put_name = f"put:{self.name}"
        self._get_name = f"get:{self.name}"
        self.items: deque[Any] = deque()
        self._putters: deque[tuple[SimEvent, Any]] = deque()
        self._getters: deque[SimEvent] = deque()
        self.level = TimeWeightedStat(sim)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> SimEvent:
        """Event that succeeds when ``item`` has been deposited."""
        event = self.sim.event(name=self._put_name)
        if self._getters:
            # Hand the item straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif not self.is_full:
            self.items.append(item)
            self.level.record(len(self.items))
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> SimEvent:
        """Event that succeeds with the oldest item once one is available."""
        event = self.sim.event(name=self._get_name)
        if self.items:
            item = self.items.popleft()
            self._admit_blocked_putter()
            self.level.record(len(self.items))
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if not self.items:
            return False, None
        item = self.items.popleft()
        self._admit_blocked_putter()
        self.level.record(len(self.items))
        return True, item

    def _admit_blocked_putter(self) -> None:
        if self._putters and not self.is_full:
            put_event, item = self._putters.popleft()
            self.items.append(item)
            put_event.succeed()

    def __repr__(self) -> str:
        cap = "∞" if self.capacity is None else self.capacity
        return f"Store({self.name!r}, {len(self.items)}/{cap})"


class CPU:
    """A single processor rated in MIPS.

    ``work(instructions)`` is a generator that acquires the CPU, burns the
    corresponding virtual time, and releases it.  Total busy time is
    tracked for utilization reporting.
    """

    def __init__(self, sim: Kernel, mips: float, name: str = "cpu"):
        if mips <= 0:
            raise SimulationError(f"mips must be positive, got {mips}")
        self.sim = sim
        self.mips = mips
        self.name = name
        self._resource = Resource(sim, capacity=1, name=name)
        self.busy_time = 0.0
        self.instructions_executed = Counter()

    def seconds_for(self, instructions: float) -> float:
        """Virtual seconds needed to execute ``instructions``."""
        if instructions < 0:
            raise SimulationError(f"negative instruction count: {instructions}")
        return instructions / (self.mips * 1e6)

    def work(self, instructions: float) -> Generator[SimEvent, Any, None]:
        """Acquire the CPU, execute ``instructions``, release. ``yield from`` me."""
        duration = self.seconds_for(instructions)
        yield self._resource.request()
        try:
            yield self.sim.timeout(duration)
            self.busy_time += duration
            self.instructions_executed.add(instructions)
        finally:
            self._resource.release()

    def utilization(self) -> float:
        """Fraction of elapsed virtual time the CPU was busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / self.sim.now

    def __repr__(self) -> str:
        return f"CPU({self.mips:g} MIPS, busy={self.busy_time:.3f}s)"


class Disk:
    """A single disk with seek/latency/transfer-rate timing and a moving head.

    Transfers address ``(extent, page)`` locations.  An access that starts
    exactly where the previous one ended (same extent, next page) is
    *sequential* and pays transfer time only; any other access pays seek +
    rotational latency first.  This captures the paper's distinction
    between cheap sequential temp-relation streaming and the seeks incurred
    when several materializations interleave on one disk.
    """

    def __init__(self, sim: Kernel, *, latency: float, seek_time: float,
                 transfer_rate: float, page_size: int, name: str = "disk"):
        if min(latency, seek_time) < 0 or transfer_rate <= 0 or page_size <= 0:
            raise SimulationError("invalid disk parameters")
        self.sim = sim
        self.latency = latency
        self.seek_time = seek_time
        self.transfer_rate = transfer_rate
        self.page_size = page_size
        self.name = name
        self._resource = Resource(sim, capacity=1, name=name)
        self._head: Optional[tuple[int, int]] = None  # (extent, next page)
        self.busy_time = 0.0
        self.ios = Counter()
        self.pages_transferred = Counter()
        self.seeks = Counter()

    @property
    def page_transfer_time(self) -> float:
        """Seconds to move one page across the disk interface."""
        return self.page_size / self.transfer_rate

    def access_time(self, extent: int, start_page: int, num_pages: int) -> float:
        """Timing of an access *if issued now* (head position dependent)."""
        time = num_pages * self.page_transfer_time
        if self._head != (extent, start_page):
            time += self.latency + self.seek_time
        return time

    def transfer(self, extent: int, start_page: int,
                 num_pages: int) -> Generator[SimEvent, Any, None]:
        """Read or write ``num_pages`` contiguous pages. ``yield from`` me.

        Reads and writes are symmetric at this level; CPU costs for issuing
        the I/O are charged by the caller (buffer manager), matching the
        paper's 3000-instructions-per-I/O accounting.
        """
        if num_pages <= 0:
            raise SimulationError(f"num_pages must be positive, got {num_pages}")
        yield self._resource.request()
        try:
            sequential = self._head == (extent, start_page)
            duration = num_pages * self.page_transfer_time
            if not sequential:
                duration += self.latency + self.seek_time
                self.seeks.add(1)
            yield self.sim.timeout(duration)
            self.busy_time += duration
            self.ios.add(1)
            self.pages_transferred.add(num_pages)
            self._head = (extent, start_page + num_pages)
        finally:
            self._resource.release()

    def utilization(self) -> float:
        """Fraction of elapsed virtual time the disk was busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / self.sim.now

    def __repr__(self) -> str:
        return (f"Disk(ios={self.ios.value}, pages={self.pages_transferred.value}, "
                f"seeks={self.seeks.value}, busy={self.busy_time:.3f}s)")


class NetworkLink:
    """The mediator's inbound network interface.

    A shared serial link of fixed bandwidth: concurrent messages queue.
    Per-message CPU costs (Table 1: 200 K instructions per send/receive)
    are charged by the communication manager, not here.
    """

    def __init__(self, sim: Kernel, *, bandwidth: float, name: str = "net"):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        self.sim = sim
        self.bandwidth = bandwidth  # bytes per second
        self.name = name
        self._resource = Resource(sim, capacity=1, name=name)
        self.busy_time = 0.0
        self.messages = Counter()
        self.bytes_carried = Counter()

    def transmission_time(self, num_bytes: int) -> float:
        """Seconds the link is occupied by a message of ``num_bytes``."""
        if num_bytes < 0:
            raise SimulationError(f"negative message size: {num_bytes}")
        return num_bytes / self.bandwidth

    def transmit(self, num_bytes: int) -> Generator[SimEvent, Any, None]:
        """Occupy the link while a message crosses it. ``yield from`` me."""
        duration = self.transmission_time(num_bytes)
        yield self._resource.request()
        try:
            yield self.sim.timeout(duration)
            self.busy_time += duration
            self.messages.add(1)
            self.bytes_carried.add(num_bytes)
        finally:
            self._resource.release()

    def utilization(self) -> float:
        """Fraction of elapsed virtual time the link was busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / self.sim.now

    def __repr__(self) -> str:
        return (f"NetworkLink(messages={self.messages.value}, "
                f"bytes={self.bytes_carried.value})")
