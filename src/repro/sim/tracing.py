"""Execution tracing.

The paper diagnoses scheduler behaviour by "checking the execution traces"
(Section 5.3).  :class:`Tracer` is the equivalent here: runtime components
emit categorized :class:`TraceEvent` records which tests and experiment
reports can filter and assert on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.exec import Kernel


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped trace record."""

    time: float
    category: str
    message: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.payload}" if self.payload else ""
        return f"[{self.time:12.6f}] {self.category:<12} {self.message}{extra}"


class Tracer:
    """Collects trace events; disabled tracers drop everything cheaply."""

    def __init__(self, sim: Kernel, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        # Parallel timestamp list: virtual time never goes backwards, so
        # events are appended in time order and ``since=`` filters can
        # bisect instead of scanning the whole trace.
        self._times: list[float] = []

    def emit(self, category: str, message: str, **payload: Any) -> None:
        """Record one event at the current virtual time (if enabled)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(self.sim.now, category, message, payload))
        self._times.append(self.sim.now)

    def filter(self, category: Optional[str] = None,
               since: float = 0.0) -> Iterator[TraceEvent]:
        """Iterate events, optionally restricted to a category / start time.

        Events are stored in time order, so ``since`` skips straight to
        the first qualifying event in O(log n).
        """
        start = bisect.bisect_left(self._times, since) if since > 0.0 else 0
        for index in range(start, len(self.events)):
            event = self.events[index]
            if category is not None and event.category != category:
                continue
            yield event

    def count(self, category: str) -> int:
        """Number of recorded events in ``category``."""
        return sum(1 for _ in self.filter(category))

    def clear(self) -> None:
        """Drop all recorded events (long multiquery runs grow forever)."""
        self.events.clear()
        self._times.clear()

    def dump(self) -> str:
        """The whole trace as printable text."""
        return "\n".join(str(event) for event in self.events)

    def __repr__(self) -> str:
        return f"Tracer({len(self.events)} events, enabled={self.enabled})"
