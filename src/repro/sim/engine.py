"""The deterministic virtual-time execution backend.

:class:`Simulator` is the discrete-event implementation of the
:class:`repro.exec.Kernel` protocol: a virtual clock and a priority heap
of events.  The event machinery itself (:class:`SimEvent`,
:class:`Timeout`, :class:`AnyOf`, :class:`AllOf`, :class:`Process`,
:class:`Interrupt`) is backend-neutral and lives in
:mod:`repro.exec.core`; it is re-exported here unchanged so existing
imports keep working.

Determinism: events scheduled at the same virtual time are processed in
(priority, insertion-order) order, so a simulation with seeded RNGs is
exactly reproducible.

Example
-------
>>> sim = Simulator()
>>> def worker(sim):
...     yield sim.timeout(1.5)
...     return "done"
>>> proc = sim.process(worker(sim))
>>> sim.run()
>>> (sim.now, proc.value)
(1.5, 'done')
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.common.errors import SimulationError
from repro.exec.core import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Interrupt,
    KernelBase,
    Process,
    SimEvent,
    Timeout,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Interrupt",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "SimEvent",
    "Simulator",
    "Timeout",
]


class Simulator(KernelBase):
    """The virtual-time event loop: a clock and a priority heap of events."""

    def __init__(self) -> None:
        super().__init__()
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, SimEvent]] = []
        self._sequence = 0
        self._processed_events = 0

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._sequence, event))

    # -- running ---------------------------------------------------------
    def _drop_cancelled(self) -> None:
        """Lazily discard cancelled events sitting at the heap top."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        time, _priority, _seq, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event heap time went backwards")
        self.now = time
        self._processed_events += 1
        event._run_callbacks()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` have been processed.

        With ``until`` set, the clock is left exactly at ``until`` if the
        queue outlives it.  ``max_events`` guards against runaway loops in
        tests.
        """
        if until is None and max_events is None:
            # Hot path (every full engine run): one tight loop, locals
            # pinned, no per-event method dispatch.
            heap = self._heap
            pop = heapq.heappop
            now = self.now
            processed_total = self._processed_events
            try:
                while heap:
                    when, _priority, _seq, event = pop(heap)
                    if event.cancelled:
                        continue
                    if when < now:
                        raise SimulationError("event heap time went backwards")
                    self.now = now = when
                    processed_total += 1
                    event._run_callbacks()
            finally:
                self._processed_events = processed_total
            self._raise_unhandled_failures()
            return
        processed = 0
        while self._heap:
            self._drop_cancelled()
            if not self._heap:
                break
            if until is not None and self.peek() > until:
                self.now = until
                self._raise_unhandled_failures()
                return
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            processed += 1
        if until is not None and self.now < until:
            self.now = until
        self._raise_unhandled_failures()

    @property
    def processed_events(self) -> int:
        """Total number of events processed since construction."""
        return self._processed_events

    def __repr__(self) -> str:
        return f"Simulator(now={self.now:g}, pending={len(self._heap)})"
