"""Catalog: relations, attributes and statistics.

The evaluation methodology of the paper is content-free — "query execution
does not depend on relation content and it can be simply studied by setting
relation parameters (cardinality and selectivity)".  The catalog therefore
stores exactly those parameters, plus enough structure (attributes, join
edges) for the optimizer and plan builder to work with.
"""

from repro.catalog.schema import Attribute, Relation
from repro.catalog.statistics import JoinStatistics, estimate_join_cardinality
from repro.catalog.catalog import Catalog

__all__ = [
    "Attribute",
    "Catalog",
    "JoinStatistics",
    "Relation",
    "estimate_join_cardinality",
]
