"""The catalog: relations plus join statistics, with derived estimates."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.catalog.schema import Relation
from repro.catalog.statistics import JoinStatistics, estimate_join_cardinality
from repro.common.errors import CatalogError


class Catalog:
    """All schema and statistics knowledge available to the mediator."""

    def __init__(self, relations: Iterable[Relation] = (),
                 statistics: JoinStatistics | None = None,
                 result_tuple_size: int = 40):
        self._relations: dict[str, Relation] = {}
        self.statistics = statistics if statistics is not None else JoinStatistics()
        if result_tuple_size <= 0:
            raise CatalogError(f"result tuple size must be positive, "
                               f"got {result_tuple_size}")
        #: size of intermediate/result tuples; the paper uses one flat
        #: 40-byte tuple format everywhere, so we default to the same.
        self.result_tuple_size = result_tuple_size
        for relation in relations:
            self.add_relation(relation)

    # -- relations -----------------------------------------------------------
    def add_relation(self, relation: Relation) -> None:
        if relation.name in self._relations:
            raise CatalogError(f"relation {relation.name!r} already registered")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> list[str]:
        """Names in registration order."""
        return list(self._relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    # -- statistics -------------------------------------------------------
    def join_selectivity(self, a: str, b: str) -> float:
        """Selectivity of the direct join edge between ``a`` and ``b``."""
        return self.statistics.selectivity(a, b)

    def estimate_cardinality(self, relations: Iterable[str]) -> float:
        """Estimated output cardinality of joining ``relations``."""
        cards = {name: rel.cardinality for name, rel in self._relations.items()}
        return estimate_join_cardinality(cards, self.statistics, relations)

    def estimate_size_bytes(self, relations: Iterable[str]) -> float:
        """Estimated output size in bytes of joining ``relations``."""
        return self.estimate_cardinality(relations) * self.result_tuple_size

    def __repr__(self) -> str:
        return (f"Catalog({len(self)} relations, "
                f"{len(self.statistics)} join edges)")
