"""Join statistics and cardinality estimation.

Selectivities are stored per (unordered) pair of relation names.  Result
sizes follow the classical independence model:

    |R1 ⋈ ... ⋈ Rk|  =  Π |Ri|  ·  Π σ(e)   over join edges e inside the set

which is also what the paper's optimizer annotations rely on ("the
estimated size of each operator result").
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import CatalogError


def _pair(a: str, b: str) -> tuple[str, str]:
    if a == b:
        raise CatalogError(f"self-join selectivity requested for {a!r}")
    return (a, b) if a < b else (b, a)


class JoinStatistics:
    """Selectivities of the join edges of a query graph."""

    def __init__(self, selectivities: Mapping[tuple[str, str], float] | None = None):
        self._selectivities: dict[tuple[str, str], float] = {}
        if selectivities:
            for (a, b), sel in selectivities.items():
                self.set_selectivity(a, b, sel)

    def set_selectivity(self, a: str, b: str, selectivity: float) -> None:
        """Record the join selectivity between relations ``a`` and ``b``."""
        if not 0.0 < selectivity <= 1.0:
            raise CatalogError(
                f"selectivity for ({a}, {b}) must be in (0, 1], got {selectivity}")
        self._selectivities[_pair(a, b)] = selectivity

    def selectivity(self, a: str, b: str) -> float:
        """Selectivity of the join edge between ``a`` and ``b``."""
        try:
            return self._selectivities[_pair(a, b)]
        except KeyError:
            raise CatalogError(f"no join edge between {a!r} and {b!r}") from None

    def has_edge(self, a: str, b: str) -> bool:
        """True if the query graph joins ``a`` and ``b`` directly."""
        return _pair(a, b) in self._selectivities

    def edges(self) -> Iterable[tuple[str, str, float]]:
        """All join edges as ``(a, b, selectivity)`` triples."""
        for (a, b), sel in sorted(self._selectivities.items()):
            yield a, b, sel

    def neighbours(self, name: str) -> set[str]:
        """Relations directly joined with ``name``."""
        out = set()
        for a, b in self._selectivities:
            if a == name:
                out.add(b)
            elif b == name:
                out.add(a)
        return out

    def __len__(self) -> int:
        return len(self._selectivities)

    def __repr__(self) -> str:
        return f"JoinStatistics({len(self)} edges)"


def estimate_join_cardinality(cardinalities: Mapping[str, int],
                              stats: JoinStatistics,
                              relations: Iterable[str]) -> float:
    """Estimated cardinality of the join of ``relations``.

    Applies every join edge whose two endpoints are inside the set; a set
    with no applicable edge degenerates to a cross product, which the
    optimizer avoids but the estimator still prices honestly.
    """
    names = list(relations)
    if not names:
        raise CatalogError("cannot estimate the join of zero relations")
    result = 1.0
    for name in names:
        try:
            result *= cardinalities[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None
    inside = set(names)
    if len(inside) != len(names):
        raise CatalogError(f"duplicate relation in join set: {sorted(names)}")
    for a, b, sel in stats.edges():
        if a in inside and b in inside:
            result *= sel
    return result
