"""Relation and attribute descriptions."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CatalogError


@dataclass(frozen=True)
class Attribute:
    """A named attribute with a size in bytes (values are never materialized)."""

    name: str
    size: int = 8

    def __post_init__(self):
        if not self.name:
            raise CatalogError("attribute needs a name")
        if self.size <= 0:
            raise CatalogError(f"attribute {self.name!r} has size {self.size}")


@dataclass(frozen=True)
class Relation:
    """A base relation exported by one wrapper.

    ``tuple_size`` defaults to the paper's 40 bytes; attributes are
    optional detail used by the query generator for join predicates.
    """

    name: str
    cardinality: int
    tuple_size: int = 40
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if not self.name:
            raise CatalogError("relation needs a name")
        if self.cardinality < 0:
            raise CatalogError(
                f"relation {self.name!r} has negative cardinality {self.cardinality}")
        if self.tuple_size <= 0:
            raise CatalogError(
                f"relation {self.name!r} has tuple size {self.tuple_size}")

    @property
    def size_bytes(self) -> int:
        """Total size of the relation in bytes."""
        return self.cardinality * self.tuple_size

    def attribute(self, name: str) -> Attribute:
        """Look an attribute up by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise CatalogError(f"relation {self.name!r} has no attribute {name!r}")

    def __str__(self) -> str:
        return f"{self.name}[{self.cardinality} x {self.tuple_size}B]"
