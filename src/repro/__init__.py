"""repro — a reproduction of *Dynamic Query Scheduling in Data
Integration Systems* (Bouganim, Fabret, Mohan, Valduriez; ICDE 2000).

The package implements the paper's mediator query engine over a
discrete-event simulation of the mediator machine and its remote
sources, including:

* the dynamic scheduling strategy (**DSE**) built from a Dynamic QEP
  Optimizer, Dynamic Query Scheduler and Dynamic Query Processor;
* the baselines it is evaluated against (**SEQ**, **MA**) and the
  analytic lower bound (**LWB**);
* every substrate: simulation kernel, resource models, catalog,
  query/plan model, dynamic-programming optimizer, simulated wrappers
  with the paper's delay taxonomy, and the mediator runtime.

Quickstart
----------
>>> from repro import (SimulationParameters, QueryEngine, make_policy,
...                    UniformDelay)
>>> from repro.experiments import figure5_workload
>>> wl = figure5_workload()
>>> params = SimulationParameters()
>>> delays = {name: UniformDelay(params.w_min) for name in wl.qep.source_relations()}
>>> engine = QueryEngine(wl.catalog, wl.qep, make_policy("DSE"), delays,
...                      params=params, seed=1)
>>> result = engine.run()
>>> result.result_tuples > 0
True
"""

from repro.catalog import Attribute, Catalog, JoinStatistics, Relation
from repro.config import SimulationParameters, W_MIN_DEFAULT
from repro.common import (
    CatalogError,
    ConfigurationError,
    MemoryOverflowError,
    OptimizerError,
    PlanError,
    QueryTimeoutError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.core import (
    ExecutionResult,
    MultiQueryEngine,
    MultiQueryResult,
    QueryEngine,
    QueryOutcome,
    QuerySubmission,
    RuntimeStatistics,
    SymmetricHashJoinEngine,
    SymmetricResult,
)
from repro.core.strategies import (
    ConcurrentOnlyPolicy,
    DsePolicy,
    MaterializeAllPolicy,
    SequentialPolicy,
    lower_bound,
    make_policy,
)
from repro.observability import (
    DecisionAuditLog,
    DecisionRecord,
    MetricsRegistry,
    SamplePoint,
    StallAttribution,
    Telemetry,
    telemetry_snapshot,
)
from repro.optimizer import CostModel, DynamicProgrammingOptimizer
from repro.resources import AdmissionController, MemoryBroker, MemoryLease
from repro.plan import QEP, PipelineChain, build_qep, validate_qep
from repro.query import JoinTree, Query, QueryGenerator
from repro.wrappers import (
    BurstyDelay,
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    InitialDelay,
    NormalDelay,
    UniformDelay,
    slow_delivery,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BurstyDelay",
    "Catalog",
    "CatalogError",
    "AdmissionController",
    "ConcurrentOnlyPolicy",
    "ConfigurationError",
    "ConstantDelay",
    "CostModel",
    "DecisionAuditLog",
    "DecisionRecord",
    "DelayModel",
    "DsePolicy",
    "DynamicProgrammingOptimizer",
    "ExecutionResult",
    "ExponentialDelay",
    "InitialDelay",
    "NormalDelay",
    "JoinStatistics",
    "JoinTree",
    "MaterializeAllPolicy",
    "MemoryBroker",
    "MemoryLease",
    "MemoryOverflowError",
    "MetricsRegistry",
    "MultiQueryEngine",
    "MultiQueryResult",
    "OptimizerError",
    "PipelineChain",
    "PlanError",
    "QEP",
    "Query",
    "QueryEngine",
    "QueryGenerator",
    "QueryOutcome",
    "QueryTimeoutError",
    "QuerySubmission",
    "Relation",
    "RuntimeStatistics",
    "ReproError",
    "SamplePoint",
    "SchedulingError",
    "SequentialPolicy",
    "SimulationError",
    "SimulationParameters",
    "StallAttribution",
    "SymmetricHashJoinEngine",
    "SymmetricResult",
    "Telemetry",
    "UniformDelay",
    "W_MIN_DEFAULT",
    "build_qep",
    "lower_bound",
    "make_policy",
    "slow_delivery",
    "telemetry_snapshot",
    "validate_qep",
]
