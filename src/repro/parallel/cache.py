"""Content-addressed on-disk run cache.

One finished run is one JSON file under ``root/<key[:2]>/<key>.json``,
where ``key`` is the SHA-256 of the run's full identity (see
:meth:`repro.parallel.spec.RunSpec.cache_key`).  Reads are
corruption-tolerant: a truncated, garbled or foreign file is treated as
a miss and the run is recomputed — the cache can never make a sweep
wrong, only faster.  Writes are atomic (temp file + ``os.replace``) so
a crashed or concurrent writer leaves either the old or the new file,
never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional


class RunCache:
    """Directory-backed map from cache key to a JSON payload."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict[str, Any]]:
        """The stored payload, or None on miss *or any* load failure."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # Missing file, unreadable file, truncated/garbled JSON:
            # all count as a miss (ValueError covers JSONDecodeError).
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(payload, key=key)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return (f"RunCache({str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")
