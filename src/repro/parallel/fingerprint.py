"""Source-tree fingerprint for cache keys.

A cached run is only valid while the simulation code that produced it is
unchanged, so every cache key mixes in a digest of the ``repro`` source
tree.  Any edit to any module invalidates the whole cache — coarse, but
sound: simulated results depend on arbitrary details of the engine, and
a stale hit would silently corrupt an experiment series.

Set ``REPRO_CODE_FINGERPRINT`` to pin (or bump) the fingerprint
explicitly — useful for tests and for sharing a cache across machines
with byte-identical installs.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

#: environment override (takes precedence over the computed digest).
FINGERPRINT_ENV = "REPRO_CODE_FINGERPRINT"

_computed: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` file under the installed ``repro`` package."""
    override = os.environ.get(FINGERPRINT_ENV)
    if override is not None:
        return override
    global _computed
    if _computed is None:
        root = Path(__file__).resolve().parents[1]  # src/repro
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _computed = digest.hexdigest()[:20]
    return _computed
