"""The canonical performance suite behind ``repro bench``.

Four cases, each reported as wall-clock seconds plus a rate:

* ``dqp_batch_loop`` — one DSE execution of the Figure 5 workload; the
  per-batch hot path (``SchedulingPlan.live()`` + batch sizing) dominates,
  so batches/second is the figure of merit;
* ``kernel_dispatch`` — raw event throughput of the virtual-time
  :class:`~repro.sim.engine.Simulator` on a timeout-chain workload;
* ``fig6_sweep_jobs1`` / ``fig6_sweep_jobsN`` — the same slowed-relation
  sweep run serially and sharded over ``N`` worker processes
  (``derived.parallel_speedup`` is the ratio);
* ``fig6_sweep_warm_cache`` — the sweep served entirely from a freshly
  populated run cache (``derived.warm_cache_fraction`` is warm/serial);
* ``service_loadtest`` — the always-on service under sustained open-loop
  arrival (:func:`repro.service.loadtest.run_loadtest`):
  ``derived.service_qps`` plus p50/p99 completion latency;
* ``service_loadtest_archive`` — the same service run with the durable
  telemetry archive enabled; ``derived.service_archive_qps_ratio``
  (archive-on / archive-off) measures the writer's hot-path cost;
* ``service_loadtest_workers`` — the same arrival stream executed on the
  sharded work-stealing worker-process pool (``repro serve --workers N``);
  ``derived.service_worker_speedup`` (multi-worker qps / single qps) is
  the execution-plane scaling figure, null on hosts with < 4 cores
  where worker processes just contend for the same CPUs.

:func:`run_bench_suite` returns a JSON-ready dict with a stable schema
(``schema_version`` guards consumers); :func:`write_bench_json` writes it
sorted and indented so the committed ``BENCH_PR3.json`` diffs cleanly.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.config import SimulationParameters
from repro.parallel.engine import SweepRunner, default_jobs

#: bump when the emitted JSON layout changes shape.
SCHEMA_VERSION = 1
SUITE = "repro-parallel-bench"

ProgressFn = Callable[[str], None]


def host_info() -> dict[str, Any]:
    """Where the numbers came from (absolute rates are host-relative)."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _dqp_case(scale: float, best_of: int) -> dict[str, Any]:
    """One DSE run; rate = scheduler batches per wall-clock second."""
    from repro.experiments.slowdown import slowdown_waits
    from repro.experiments.workloads import figure5_workload
    from repro.parallel.spec import RunSpec, uniform_delay_specs

    params = SimulationParameters()
    workload = figure5_workload(scale=scale)
    waits = slowdown_waits(workload, "A", 4.0 * scale, params)
    spec = RunSpec(strategy="DSE", seed=1, scale=scale,
                   delays=uniform_delay_specs(waits), params=params,
                   tuple_size=workload.tuple_size)
    best_wall, batches = float("inf"), 0
    for _ in range(best_of):
        wall, result = _timed(spec.execute)
        if wall < best_wall:
            best_wall, batches = wall, result.batches_processed
    return {"name": "dqp_batch_loop", "wall_s": best_wall,
            "batches": batches,
            "batches_per_sec": batches / best_wall if best_wall else 0.0}


def _kernel_case(best_of: int, processes: int = 20,
                 steps: int = 2000) -> dict[str, Any]:
    """Raw kernel dispatch: concurrent timeout chains, events/second."""
    from repro.sim.engine import Simulator

    def ticker(sim: Simulator, n: int):
        for _ in range(n):
            yield sim.timeout(1.0)

    def drive() -> tuple[float, int]:
        sim = Simulator()
        for _ in range(processes):
            sim.process(ticker(sim, steps))
        wall, _ = _timed(sim.run)
        return wall, sim.processed_events

    best_wall, events = float("inf"), 0
    for _ in range(best_of):
        wall, processed = drive()
        if wall < best_wall:
            best_wall, events = wall, processed
    return {"name": "kernel_dispatch", "wall_s": best_wall,
            "events": events,
            "events_per_sec": events / best_wall if best_wall else 0.0}


def _service_case(submissions: int, rate: float, seed: int,
                  archive_dir: "str | None" = None,
                  workers: int = 1) -> dict[str, Any]:
    """The always-on service under sustained arrival (wall-clock).

    With ``archive_dir`` the run also writes the durable telemetry
    archive — the same workload with and without it is the archive's
    hot-path overhead measurement (acceptance: qps regresses <= 5%).
    With ``workers > 1`` the submissions execute on the sharded
    worker-process pool instead of the in-process kernel.
    """
    import asyncio

    from repro.service.loadtest import run_loadtest

    report = asyncio.run(run_loadtest(submissions=submissions, rate=rate,
                                      seed=seed, archive_dir=archive_dir,
                                      workers=workers))
    name = ("service_loadtest_workers" if workers > 1
            else "service_loadtest_archive" if archive_dir is not None
            else "service_loadtest")
    case = {"name": name, "wall_s": report["wall_s"],
            "submissions": report["submitted"],
            "completed": report["completed"],
            "admission_queued": report["admission"]["queued"],
            "service_qps": report["service_qps"],
            "service_p50_latency_s": report["latency"]["p50_s"],
            "service_p99_latency_s": report["latency"]["p99_s"]}
    if workers > 1:
        case["workers"] = workers
        case["steals"] = report["steals"]
        case["worker_completed"] = [row["completed"]
                                    for row in report["workers"] or []]
    if report.get("archive") is not None:
        case["archive_records"] = report["archive"]["records_written"]
        case["archive_dropped"] = report["archive"]["dropped_total"]
    return case


def _sweep_specs(scale: float, retrieval_times: list[float],
                 repetitions: int, seed: int) -> list[Any]:
    from repro.experiments.runner import point_specs
    from repro.experiments.slowdown import STRATEGIES, slowdown_waits
    from repro.experiments.workloads import figure5_workload
    from repro.parallel.spec import uniform_delay_specs

    params = SimulationParameters()
    workload = figure5_workload(scale=scale)
    specs: list[Any] = []
    for retrieval_time in retrieval_times:
        waits = slowdown_waits(workload, "A", retrieval_time, params)
        specs.extend(point_specs(
            STRATEGIES, scale, workload.tuple_size,
            uniform_delay_specs(waits), params, repetitions, seed))
    return specs


def run_bench_suite(*, jobs: int = 0, scale: float = 0.2,
                    retrieval_times: Optional[list[float]] = None,
                    repetitions: int = 1, seed: int = 1, best_of: int = 3,
                    service_submissions: int = 300,
                    service_rate: float = 200.0,
                    service_workers: int = 2,
                    progress: Optional[ProgressFn] = None) -> dict[str, Any]:
    """Run every case and return the JSON-ready report dict."""
    say = progress if progress is not None else (lambda _msg: None)
    jobs = jobs if jobs > 0 else default_jobs()
    retrieval_times = (list(retrieval_times) if retrieval_times is not None
                       else [2.0, 5.0, 8.0])
    cases: list[dict[str, Any]] = []

    say("dqp_batch_loop")
    cases.append(_dqp_case(scale, best_of))
    say("kernel_dispatch")
    cases.append(_kernel_case(best_of))

    specs = _sweep_specs(scale, retrieval_times, repetitions, seed)

    say("fig6_sweep_jobs1")
    serial_wall, _ = _timed(lambda: SweepRunner(jobs=1).run(specs))
    cases.append({"name": "fig6_sweep_jobs1", "wall_s": serial_wall,
                  "runs": len(specs), "jobs": 1})

    say(f"fig6_sweep_jobs{jobs}")
    parallel_wall, _ = _timed(lambda: SweepRunner(jobs=jobs).run(specs))
    cases.append({"name": "fig6_sweep_jobsN", "wall_s": parallel_wall,
                  "runs": len(specs), "jobs": jobs})

    say("fig6_sweep_warm_cache")
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        SweepRunner(jobs=1, cache_dir=tmp).run(specs)  # populate (cold)
        warm = SweepRunner(jobs=1, cache_dir=tmp)
        warm_wall, _ = _timed(lambda: warm.run(specs))
        cases.append({"name": "fig6_sweep_warm_cache", "wall_s": warm_wall,
                      "runs": len(specs),
                      "cache_hits": warm.stats.cache_hits})

    say("service_loadtest")
    service_case = _service_case(service_submissions, service_rate, seed)
    cases.append(service_case)

    say("service_loadtest_archive")
    with tempfile.TemporaryDirectory(prefix="repro-bench-archive-") as tmp:
        archive_case = _service_case(service_submissions, service_rate,
                                     seed, archive_dir=tmp)
    cases.append(archive_case)

    worker_case = None
    if service_workers > 1:
        say(f"service_loadtest_workers{service_workers}")
        worker_case = _service_case(service_submissions, service_rate,
                                    seed, workers=service_workers)
        cases.append(worker_case)

    host = host_info()
    report = {
        "suite": SUITE,
        "schema_version": SCHEMA_VERSION,
        "host": host,
        "config": {"jobs": jobs, "scale": scale,
                   "retrieval_times": retrieval_times,
                   "repetitions": repetitions, "seed": seed,
                   "best_of": best_of,
                   "service_submissions": service_submissions,
                   "service_rate": service_rate,
                   "service_workers": service_workers},
        "cases": cases,
        "derived": {
            # A single-core host cannot speed anything up by sharding;
            # null (not a ratio near 1) keeps trend comparisons from
            # flagging the hardware as a regression.
            "parallel_speedup": (
                None if host["cpu_count"] <= 1
                else serial_wall / parallel_wall if parallel_wall else 0.0),
            "warm_cache_fraction": (warm_wall / serial_wall
                                    if serial_wall else 0.0),
            "dqp_batches_per_sec": cases[0]["batches_per_sec"],
            "kernel_events_per_sec": cases[1]["events_per_sec"],
            "service_qps": service_case["service_qps"],
            "service_p50_latency_s": service_case["service_p50_latency_s"],
            "service_p99_latency_s": service_case["service_p99_latency_s"],
            # Archive-on vs archive-off throughput on the same host and
            # workload: ~1.0 when the writer stays off the hot path.
            "service_archive_qps_ratio": (
                archive_case["service_qps"] / service_case["service_qps"]
                if service_case["service_qps"] else None),
            # Multi-worker qps over single-kernel qps on the same arrival
            # schedule.  Worker processes need real cores to help; below
            # 4 they mostly contend with the coordinator and each other,
            # so (like parallel_speedup on 1 core) the figure is null
            # rather than a misleading ratio near or below 1.
            "service_worker_speedup": (
                worker_case["service_qps"] / service_case["service_qps"]
                if worker_case is not None and host["cpu_count"] >= 4
                and service_case["service_qps"] else None),
        },
    }
    say("done")
    return report


def write_bench_json(report: dict[str, Any],
                     path: "str | os.PathLike[str]") -> Path:
    """Write the report deterministically (sorted keys, indent 2)."""
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out
