"""The sweep runner: shard independent runs across processes, cache results.

:class:`SweepRunner` is the single entry point the sweep drivers and the
CLI use.  Given an ordered list of specs (:class:`~repro.parallel.spec.
RunSpec` / :class:`~repro.parallel.spec.MultiQuerySpec`, or anything with
the same four-method surface) it:

1. serves every spec it can from the :class:`~repro.parallel.cache.
   RunCache` (content-addressed, corruption-tolerant);
2. executes the misses — inline when ``jobs == 1``, else sharded over a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
3. stores fresh results back into the cache;
4. returns results **in spec order**, regardless of which worker
   finished first or which spec was a hit — a parallel or cached sweep
   is positionally identical to a serial one.

Determinism: each run rebuilds its own ``World`` from its own seed, so a
run's result does not depend on which process computed it or on what ran
before it.  The serial/parallel/cached equality is pinned by
``tests/test_parallel_determinism.py`` and the golden-snapshot suite.

One asymmetry to be aware of: the inline path returns the engine's full
result object (including in-process extras like the runtime-statistics
object), while pool- and cache-served results carry exactly the measured
payload of :mod:`repro.parallel.results`.  Every metric a sweep reads is
identical either way.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Sequence

from repro.observability import MetricsRegistry
from repro.parallel.cache import RunCache


class Spec(Protocol):
    """What SweepRunner needs from a run description."""

    def cache_key(self) -> str: ...
    def execute(self) -> Any: ...
    def execute_payload(self) -> dict[str, Any]: ...
    @staticmethod
    def result_from_payload(payload: dict[str, Any]) -> Any: ...


def _execute_payload(spec: Spec) -> dict[str, Any]:
    """Module-level worker entry point (must be picklable)."""
    return spec.execute_payload()


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` ("use the machine"): one per core."""
    return max(1, os.cpu_count() or 1)


@dataclass
class SweepStats:
    """What one :meth:`SweepRunner.run` call did, for logs and tests."""

    total: int = 0
    cache_hits: int = 0
    executed_inline: int = 0
    executed_pool: int = 0
    stored: int = 0


@dataclass
class SweepRunner:
    """Shards independent runs across processes with an optional cache."""

    #: worker processes; 1 = serial (in-process), 0 = one per core.
    jobs: int = 1
    #: cache directory; None disables caching entirely.
    cache_dir: "str | os.PathLike[str] | None" = None
    #: gate for ``--no-cache``: keep the directory configured but bypass it.
    use_cache: bool = True
    stats: SweepStats = field(default_factory=SweepStats)
    #: cross-run telemetry: every result's metrics registry (inline,
    #: pool-shipped or cache-served) is merged in here, so a sweep's
    #: aggregate counters survive the process boundary.
    merged_metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=True))

    def __post_init__(self) -> None:
        if self.jobs == 0:
            self.jobs = default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1 (or 0 = auto), got {self.jobs}")
        self.cache: Optional[RunCache] = (
            RunCache(self.cache_dir)
            if self.cache_dir is not None and self.use_cache else None)

    def run(self, specs: Sequence[Spec]) -> list[Any]:
        """Execute every spec; results returned in spec order."""
        stats = self.stats
        stats.total += len(specs)
        results: list[Any] = [None] * len(specs)
        keys: list[Optional[str]] = [None] * len(specs)
        pending: list[int] = []

        if self.cache is not None:
            for i, spec in enumerate(specs):
                key = spec.cache_key()
                keys[i] = key
                payload = self.cache.load(key)
                if payload is not None:
                    results[i] = spec.result_from_payload(payload["result"])
                    self._merge_telemetry(results[i])
                    stats.cache_hits += 1
                else:
                    pending.append(i)
        else:
            pending = list(range(len(specs)))

        if not pending:
            return results

        if self.jobs == 1 or len(pending) == 1:
            for i in pending:
                result = specs[i].execute()
                results[i] = result
                self._merge_telemetry(result)
                self._store(specs[i], keys[i], result)
                stats.executed_inline += 1
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                payloads = pool.map(_execute_payload,
                                    [specs[i] for i in pending])
                for i, payload in zip(pending, payloads):
                    results[i] = specs[i].result_from_payload(payload)
                    self._merge_telemetry(results[i])
                    if self.cache is not None and keys[i] is not None:
                        self.cache.store(keys[i], {"result": payload})
                        stats.stored += 1
                    stats.executed_pool += 1
        return results

    def _merge_telemetry(self, result: Any) -> None:
        """Fold one result's metrics registry into :attr:`merged_metrics`.

        Results from telemetry-disabled runs (``metrics is None``) and
        multi-query results (no ``metrics`` attribute) merge nothing.
        """
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            self.merged_metrics.merge(metrics)

    def _store(self, spec: Spec, key: Optional[str], result: Any) -> None:
        if self.cache is None or key is None:
            return
        # Re-flatten through the payload layer so a cache-served result
        # is byte-identical to what a pool worker would have shipped.
        if hasattr(result, "outcomes"):
            from repro.parallel.results import multiquery_result_to_payload
            payload = multiquery_result_to_payload(result)
        else:
            from repro.parallel.results import result_to_payload
            payload = result_to_payload(result)
        self.cache.store(key, {"result": payload})
        self.stats.stored += 1
