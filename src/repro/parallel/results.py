"""ExecutionResult <-> JSON payload conversion.

Parallel workers and the run cache both move results across a process or
filesystem boundary, so the *measured* content of an
:class:`~repro.core.engine.ExecutionResult` is flattened to plain JSON:
every scalar metric, the per-wrapper and per-fragment statistics, the
stall breakdown and the typed decision log survive the round trip
bit-for-bit (Python floats serialize losslessly through ``repr``-based
JSON).

Since schema 2 the telemetry channels cross the boundary too: the
metrics registry travels as its snapshot dict (rebuilt via
:meth:`~repro.observability.registry.MetricsRegistry.from_snapshot`, so
a parent process can :meth:`~repro.observability.registry.
MetricsRegistry.merge` worker telemetry) and the periodic samples as
their plain dicts.  What still does **not** survive are in-memory
object graphs that only make sense inside the producing process: the
tracer and the runtime-statistics object.  A run that needs those
(``repro trace``) is a single execution and stays in-process.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

from repro.core.engine import ExecutionResult, FragmentStat
from repro.core.multiquery import MultiQueryResult, QueryOutcome
from repro.observability import (
    DecisionRecord,
    MetricsRegistry,
    SamplePoint,
    Span,
)

#: bumped whenever the payload layout changes (part of the cache key).
#: 2: telemetry metrics snapshot + periodic samples joined the payload.
#: 3: multi-query payloads carry the machine-wide decision audit log and
#:    the per-query admission/memory outcome fields.
#: 4: causal span trees and their compact summaries cross the boundary
#:    (``spans`` / ``span_summary``; None when spans were disabled).
#: 5: submission/tenant identity joined both payload shapes
#:    (``submission_id`` / ``tenant``; None/"" outside `repro serve`).
#: 6: ``worker_id`` joined the scalar fields — results produced by a
#:    `repro serve --workers N` pool identify the executing worker.
RESULT_SCHEMA_VERSION = 6

#: scalar ExecutionResult fields copied verbatim, in schema order.
_SCALAR_FIELDS = (
    "strategy", "response_time", "result_tuples", "time_to_first_tuple",
    "submission_id", "tenant", "worker_id",
    "planning_phases", "context_switches", "batches_processed", "stall_time",
    "degradations", "memory_splits", "timeouts", "rate_change_events",
    "cpu_busy_time", "cpu_utilization", "disk_busy_time", "disk_ios",
    "disk_seeks", "cache_hit_ratio", "memory_peak_bytes", "tuples_spilled",
    "tuples_reloaded",
)


def result_to_payload(result: ExecutionResult) -> dict[str, Any]:
    """Flatten the measured content of one execution to plain JSON."""
    payload: dict[str, Any] = {
        name: getattr(result, name) for name in _SCALAR_FIELDS}
    payload["wrapper_stats"] = {
        name: list(stats) for name, stats in result.wrapper_stats.items()}
    payload["fragment_stats"] = {
        name: asdict(stat) for name, stat in result.fragment_stats.items()}
    payload["reopt_opportunities"] = list(result.reopt_opportunities)
    payload["reopt_swaps"] = list(result.reopt_swaps)
    payload["stall_breakdown"] = dict(result.stall_breakdown)
    payload["decisions"] = [record.to_dict() for record in result.decisions]
    payload["metrics"] = (result.metrics.as_dict()
                          if result.metrics is not None else None)
    payload["samples"] = [sample.to_dict() for sample in result.samples]
    payload["spans"] = ([span.to_dict() for span in result.spans]
                        if result.spans is not None else None)
    payload["span_summary"] = result.span_summary
    return payload


def result_from_payload(payload: dict[str, Any]) -> ExecutionResult:
    """Rebuild an :class:`ExecutionResult` from :func:`result_to_payload`."""
    result = ExecutionResult(
        **{name: payload[name] for name in _SCALAR_FIELDS})
    result.wrapper_stats = {
        name: tuple(stats)  # type: ignore[misc]
        for name, stats in payload["wrapper_stats"].items()}
    result.fragment_stats = {
        name: FragmentStat(**stat)
        for name, stat in payload["fragment_stats"].items()}
    result.reopt_opportunities = list(payload["reopt_opportunities"])
    result.reopt_swaps = list(payload["reopt_swaps"])
    result.stall_breakdown = dict(payload["stall_breakdown"])
    result.decisions = [DecisionRecord.from_dict(record)
                        for record in payload["decisions"]]
    metrics = payload.get("metrics")
    if metrics is not None:
        result.metrics = MetricsRegistry.from_snapshot(metrics)
    result.samples = [SamplePoint.from_dict(sample)
                      for sample in payload.get("samples", [])]
    spans = payload.get("spans")
    if spans is not None:
        result.spans = [Span.from_dict(span) for span in spans]
    result.span_summary = payload.get("span_summary")
    return result


def multiquery_result_to_payload(result: MultiQueryResult) -> dict[str, Any]:
    """Flatten one multi-query run (per-query outcomes + machine totals)."""
    return {
        "outcomes": [asdict(outcome) for outcome in result.outcomes],
        "makespan": result.makespan,
        "cpu_busy_time": result.cpu_busy_time,
        "disk_busy_time": result.disk_busy_time,
        "decisions": [record.to_dict() for record in result.decisions],
        "spans": ([span.to_dict() for span in result.spans]
                  if result.spans is not None else None),
    }


def multiquery_result_from_payload(payload: dict[str, Any]) -> MultiQueryResult:
    spans = payload.get("spans")
    return MultiQueryResult(
        outcomes=[QueryOutcome(**outcome) for outcome in payload["outcomes"]],
        makespan=payload["makespan"],
        cpu_busy_time=payload["cpu_busy_time"],
        disk_busy_time=payload["disk_busy_time"],
        decisions=[DecisionRecord.from_dict(record)
                   for record in payload.get("decisions", [])],
        spans=([Span.from_dict(span) for span in spans]
               if spans is not None else None),
    )
