"""Parallel experiment engine: sweep sharding and a run cache.

Every figure and ablation of the reproduction is a sweep of *independent*
seeded simulations, so the package exploits the two classic levers for
such workloads:

* **sharding** — :class:`SweepRunner` fans ``(config, strategy, seed)``
  runs out over a :class:`~concurrent.futures.ProcessPoolExecutor` with
  deterministic result ordering (each run builds its own ``World`` from
  its own seed, so results are bit-identical to a serial execution);
* **reuse** — :class:`RunCache` is a content-addressed on-disk store
  keyed by a hash of the full run identity (simulation parameters, QEP
  workload, delay models, seed) plus a fingerprint of the source tree,
  so repeated sweeps skip already-computed points.

The sweep drivers under :mod:`repro.experiments` all accept a
``runner=`` argument; the CLI exposes ``--jobs`` / ``--cache-dir`` /
``--no-cache`` on the sweep subcommands and ``repro bench`` runs the
canonical performance suite.
"""

from repro.parallel.cache import RunCache
from repro.parallel.engine import SweepRunner, SweepStats
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.results import (
    RESULT_SCHEMA_VERSION,
    multiquery_result_from_payload,
    multiquery_result_to_payload,
    result_from_payload,
    result_to_payload,
)
from repro.parallel.spec import (
    MultiQuerySpec,
    RunSpec,
    delay_from_spec,
    delay_to_spec,
    uniform_delay_specs,
)

__all__ = [
    "MultiQuerySpec",
    "RESULT_SCHEMA_VERSION",
    "RunCache",
    "RunSpec",
    "SweepRunner",
    "SweepStats",
    "code_fingerprint",
    "delay_from_spec",
    "delay_to_spec",
    "multiquery_result_from_payload",
    "multiquery_result_to_payload",
    "result_from_payload",
    "result_to_payload",
    "uniform_delay_specs",
]
