"""Cross-PR benchmark regression tracking.

Every PR commits a ``BENCH_PR<n>.json`` report from :mod:`repro.parallel.
bench`.  This module turns that series into a guard and a trajectory:

* :func:`compare_reports` — compare a fresh report against a committed
  baseline, per derived metric, with a tolerance ("fail CI when the DQP
  batch loop got ≥10% slower than the last PR");
* :func:`load_bench_report` — read + sanity-check one committed report;
* :func:`trend_rows` / :func:`format_trend` — fold a whole directory of
  ``BENCH_PR*.json`` files into a per-metric trajectory table
  (``scripts/bench_trend.py`` is the CLI wrapper).

Comparison is per-metric *directional*: throughput metrics regress when
they drop, the warm-cache fraction regresses when it grows.  Absolute
rates are host-relative, so CI gates should use a loose tolerance —
the committed numbers come from developer machines, the gate only has
to catch order-of-magnitude slips.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.parallel.bench import SUITE

#: the derived metrics the gate watches; True = higher is better.
TREND_METRICS: Dict[str, bool] = {
    "dqp_batches_per_sec": True,
    "kernel_events_per_sec": True,
    "parallel_speedup": True,
    "warm_cache_fraction": False,
    "service_qps": True,
    "service_p50_latency_s": False,
    "service_p99_latency_s": False,
    "service_worker_speedup": True,
}

#: metrics that only compare like-for-like: they depend on the sweep
#: shape (scale, repetitions, retrieval points), not just the host, so
#: when two reports were produced with different configs they are
#: reported but never gated.  The pure rate metrics stay gated — a
#: batches/sec collapse is a regression at any sweep size.
CONFIG_SENSITIVE_METRICS = frozenset(
    {"parallel_speedup", "warm_cache_fraction",
     # Service figures scale with the arrival schedule (submission
     # count, rate): only like-for-like runs are gate-worthy.
     "service_qps", "service_p50_latency_s", "service_p99_latency_s",
     "service_worker_speedup"})

_BENCH_GLOB = "BENCH_PR*.json"
_PR_NUMBER = re.compile(r"BENCH_PR(\d+)\.json$")


def parse_percent(text: str) -> float:
    """``"10%"`` or ``"0.10"`` -> 0.10 (a regression-budget fraction)."""
    text = text.strip()
    try:
        value = (float(text[:-1]) / 100.0 if text.endswith("%")
                 else float(text))
    except ValueError:
        raise ConfigurationError(
            f"expected a percentage like '10%' or a fraction like '0.1', "
            f"got {text!r}") from None
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(
            f"regression budget must be in [0%, 100%), got {text!r}")
    return value


def load_bench_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one committed bench report, with friendly failure modes."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"bench report not found: {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable bench report {path}: {exc}")
    if not isinstance(data, dict) or data.get("suite") != SUITE \
            or "derived" not in data:
        raise ConfigurationError(
            f"{path} is not a {SUITE} report (missing suite/derived keys)")
    return data


@dataclass(frozen=True)
class MetricComparison:
    """One derived metric, baseline vs current."""

    metric: str
    baseline: float
    current: float
    higher_is_better: bool
    #: an advisory comparison is shown but never gated (the two reports
    #: were produced with different sweep configs).
    advisory: bool = False

    @property
    def change_fraction(self) -> float:
        """Signed relative change; positive = improved."""
        if self.baseline == 0:
            return 0.0
        raw = (self.current - self.baseline) / self.baseline
        return raw if self.higher_is_better else -raw

    def regressed(self, budget: float) -> bool:
        return not self.advisory and self.change_fraction < -budget

    def row(self) -> List[str]:
        arrow = "+" if self.change_fraction >= 0 else ""
        cells = [self.metric, f"{self.baseline:,.2f}",
                 f"{self.current:,.2f}",
                 f"{arrow}{100 * self.change_fraction:.1f}%"]
        if self.advisory:
            cells.append("(advisory: configs differ)")
        return cells


def compare_reports(baseline: Dict[str, Any], current: Dict[str, Any],
                    max_regression: float) -> List[MetricComparison]:
    """Per-metric comparison of two reports.

    Returns every watched metric present in both reports; the caller
    gates on ``[c for c in comparisons if c.regressed(budget)]``.  When
    the two reports were produced with different sweep configs, the
    :data:`CONFIG_SENSITIVE_METRICS` come back advisory — displayed but
    exempt from the gate.
    """
    same_config = baseline.get("config") == current.get("config")
    comparisons = []
    for metric, higher_is_better in TREND_METRICS.items():
        base = baseline["derived"].get(metric)
        cur = current["derived"].get(metric)
        if base is None or cur is None:
            continue
        comparisons.append(MetricComparison(
            metric=metric, baseline=float(base), current=float(cur),
            higher_is_better=higher_is_better,
            advisory=(not same_config
                      and metric in CONFIG_SENSITIVE_METRICS)))
    return comparisons


def find_bench_reports(directory: Union[str, Path]) -> List[Path]:
    """All ``BENCH_PR*.json`` under ``directory``, sorted by PR number."""
    directory = Path(directory)

    def pr_number(path: Path) -> int:
        match = _PR_NUMBER.search(path.name)
        return int(match.group(1)) if match else -1

    return sorted((p for p in directory.glob(_BENCH_GLOB)
                   if _PR_NUMBER.search(p.name)), key=pr_number)


def trend_rows(paths: List[Path]) -> Dict[str, List[Optional[float]]]:
    """Per-metric value series across the PR sequence (None = absent)."""
    series: Dict[str, List[Optional[float]]] = {
        metric: [] for metric in TREND_METRICS}
    for path in paths:
        derived = load_bench_report(path)["derived"]
        for metric in TREND_METRICS:
            value = derived.get(metric)
            series[metric].append(float(value) if value is not None else None)
    return series


def format_trend(paths: List[Path]) -> str:
    """A fixed-width per-metric trajectory table across the PR series."""
    if not paths:
        return "no BENCH_PR*.json reports found"
    labels = [p.stem.replace("BENCH_", "") for p in paths]
    series = trend_rows(paths)
    width = max(len(m) for m in TREND_METRICS) + 2
    col = max(12, max(len(label) for label in labels) + 2)
    lines = ["bench trend (" + " -> ".join(labels) + ")", ""]
    lines.append("".ljust(width)
                 + "".join(label.rjust(col) for label in labels) + "  trend")
    for metric, higher_is_better in TREND_METRICS.items():
        values = series[metric]
        cells = "".join(("-".rjust(col) if value is None
                         else f"{value:,.2f}".rjust(col)) for value in values)
        present = [value for value in values if value is not None]
        if len(present) >= 2 and present[0]:
            change = (present[-1] - present[0]) / present[0]
            if not higher_is_better:
                change = -change
            trend = f"  {'+' if change >= 0 else ''}{100 * change:.1f}%"
        else:
            trend = "  n/a"
        lines.append(metric.ljust(width) + cells + trend)
    lines.append("")
    lines.append("(higher is better except warm_cache_fraction and the "
                 "service latencies; absolute rates are host-relative)")
    return "\n".join(lines)
