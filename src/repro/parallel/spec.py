"""Self-contained, serializable descriptions of one simulation run.

A spec carries everything a worker process needs to *rebuild* a run from
scratch — workload scale, delay-model parameters, the full
:class:`~repro.config.SimulationParameters` and the seed — instead of
pickling live catalog/QEP object graphs.  That buys three things at
once: the spec is cheap to ship to a pool worker, its canonical JSON
form is the content-address of the run cache, and a run rebuilt from it
is bit-identical to the serial execution (each run constructs its own
``World`` from its own seed; nothing leaks between runs).

Two spec kinds cover every sweep in the repository:

* :class:`RunSpec` — one ``(workload, strategy, seed)`` single-query
  execution (Figures 6/7/8, the ablations);
* :class:`MultiQuerySpec` — one Section 6 multi-query batch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.common.errors import ConfigurationError
from repro.config import SimulationParameters
from repro.parallel.fingerprint import code_fingerprint
from repro.parallel.results import (
    RESULT_SCHEMA_VERSION,
    multiquery_result_from_payload,
    multiquery_result_to_payload,
    result_from_payload,
    result_to_payload,
)
from repro.wrappers.delays import (
    BurstyDelay,
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    InitialDelay,
    NormalDelay,
    UniformDelay,
)

# -- delay-model specs ------------------------------------------------------

def delay_to_spec(model: DelayModel) -> dict[str, Any]:
    """Serializable description of a delay model (inverse of
    :func:`delay_from_spec`)."""
    if isinstance(model, ConstantDelay):
        return {"kind": "constant", "w": model.w}
    if isinstance(model, UniformDelay):
        return {"kind": "uniform", "w": model.w}
    if isinstance(model, ExponentialDelay):
        return {"kind": "exponential", "w": model.w}
    if isinstance(model, NormalDelay):
        return {"kind": "normal", "mean": model.mean, "std": model.std}
    if isinstance(model, InitialDelay):
        return {"kind": "initial", "initial": model.initial,
                "base": delay_to_spec(model.base)}
    if isinstance(model, BurstyDelay):
        return {"kind": "bursty", "burst_tuples": model.burst_tuples,
                "gap": model.gap, "within": model.within_burst_wait}
    raise ConfigurationError(
        f"delay model {model!r} has no serializable spec")


def delay_from_spec(spec: dict[str, Any]) -> DelayModel:
    """Build a fresh delay model from a :func:`delay_to_spec` dict."""
    kind = spec.get("kind")
    if kind == "constant":
        return ConstantDelay(spec["w"])
    if kind == "uniform":
        return UniformDelay(spec["w"])
    if kind == "exponential":
        return ExponentialDelay(spec["w"])
    if kind == "normal":
        return NormalDelay(spec["mean"], spec["std"])
    if kind == "initial":
        return InitialDelay(spec["initial"], delay_from_spec(spec["base"]))
    if kind == "bursty":
        return BurstyDelay(spec["burst_tuples"], spec["gap"], spec["within"])
    raise ConfigurationError(f"unknown delay spec {spec!r}")


def uniform_delay_specs(waits: dict[str, float]) -> dict[str, dict[str, Any]]:
    """Per-relation uniform-delay specs (the experiments' default model)."""
    return {name: {"kind": "uniform", "w": wait}
            for name, wait in waits.items()}


def _canonical_key(identity: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON identity + code fingerprint."""
    blob = json.dumps(
        {"identity": identity,
         "schema": RESULT_SCHEMA_VERSION,
         "code": code_fingerprint()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- single-query runs ------------------------------------------------------

@dataclass
class RunSpec:
    """One ``(workload, delays, strategy, seed)`` simulation run."""

    strategy: str
    seed: int
    #: Figure 5 workload parameters (the QEP is rebuilt from these).
    scale: float
    delays: dict[str, dict[str, Any]]
    params: SimulationParameters = field(default_factory=SimulationParameters)
    tuple_size: int = 40

    def identity(self) -> dict[str, Any]:
        """Canonical JSON identity — every input the result depends on."""
        return {
            "kind": "run",
            "strategy": self.strategy.upper(),
            "seed": self.seed,
            "workload": {"family": "figure5", "scale": self.scale,
                         "tuple_size": self.tuple_size},
            "delays": self.delays,
            "params": asdict(self.params),
        }

    def cache_key(self) -> str:
        return _canonical_key(self.identity())

    def execute(self):
        """Run once in-process; returns the full ExecutionResult."""
        from repro.core.engine import QueryEngine
        from repro.core.strategies import make_policy
        from repro.experiments.workloads import figure5_workload

        workload = figure5_workload(tuple_size=self.tuple_size,
                                    scale=self.scale)
        missing = set(workload.relation_names) - set(self.delays)
        if missing:
            raise ConfigurationError(
                f"run spec has no delay for relation(s) {sorted(missing)}")
        delay_models = {name: delay_from_spec(spec)
                        for name, spec in self.delays.items()}
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy(self.strategy), delay_models,
                             params=self.params, seed=self.seed)
        return engine.run()

    def execute_payload(self) -> dict[str, Any]:
        """Run once and flatten the result (worker-side entry point)."""
        return result_to_payload(self.execute())

    @staticmethod
    def result_from_payload(payload: dict[str, Any]):
        return result_from_payload(payload)


# -- multi-query batches ----------------------------------------------------

@dataclass
class MultiQuerySpec:
    """One Section 6 batch: ``n`` staggered copies of the Figure 5 query."""

    strategy: str
    wait: float
    num_queries: int
    seed: int
    scale: float
    inter_arrival: float = 0.0
    params: SimulationParameters = field(default_factory=SimulationParameters)
    tuple_size: int = 40
    #: per-query initial budget override (None: params.query_memory_bytes).
    memory_bytes: int | None = None
    #: per-query lease bounds (None: pinned to the initial budget).
    min_memory_bytes: int | None = None
    max_memory_bytes: int | None = None
    #: global mediator pool; None runs ungoverned (unbounded pool).
    global_memory_bytes: int | None = None
    #: admission policy when governed ("fifo" / "priority" / "none").
    admission: str = "fifo"

    def identity(self) -> dict[str, Any]:
        return {
            "kind": "multiquery",
            "strategy": self.strategy.upper(),
            "wait": self.wait,
            "num_queries": self.num_queries,
            "inter_arrival": self.inter_arrival,
            "seed": self.seed,
            "workload": {"family": "figure5", "scale": self.scale,
                         "tuple_size": self.tuple_size},
            "params": asdict(self.params),
            "memory": {"query": self.memory_bytes,
                       "min": self.min_memory_bytes,
                       "max": self.max_memory_bytes,
                       "global": self.global_memory_bytes,
                       "admission": self.admission},
        }

    def cache_key(self) -> str:
        return _canonical_key(self.identity())

    def execute(self):
        """Run the batch in-process; returns the full MultiQueryResult."""
        from repro.core.multiquery import MultiQueryEngine, QuerySubmission
        from repro.core.strategies import make_policy
        from repro.experiments.workloads import figure5_workload

        workload = figure5_workload(tuple_size=self.tuple_size,
                                    scale=self.scale)
        engine = MultiQueryEngine(
            params=self.params, seed=self.seed,
            global_memory_bytes=self.global_memory_bytes,
            admission=self.admission)
        for i in range(self.num_queries):
            engine.submit(QuerySubmission(
                name=f"{self.strategy}-{i}",
                catalog=workload.catalog,
                qep=workload.qep,
                policy=make_policy(self.strategy),
                delay_models={name: UniformDelay(self.wait)
                              for name in workload.relation_names},
                start_time=i * self.inter_arrival,
                memory_bytes=self.memory_bytes,
                min_memory_bytes=self.min_memory_bytes,
                max_memory_bytes=self.max_memory_bytes))
        return engine.run()

    def execute_payload(self) -> dict[str, Any]:
        return multiquery_result_to_payload(self.execute())

    @staticmethod
    def result_from_payload(payload: dict[str, Any]):
        return multiquery_result_from_payload(payload)
