"""The one-slowed-down-relation experiments (Figures 6 and 7).

One input relation's average waiting time ``w`` is increased so that its
total retrieval time (``n_p * w``, the X axis of the figures) sweeps a
range; every other relation stays at ``w_min``.  SEQ, MA and DSE are
measured at each point and the analytic LWB is computed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SimulationParameters
from repro.core.strategies.lwb import lower_bound
from repro.experiments.runner import (
    measure_points,
    point_specs,
    resolve_repetitions,
    run_point_specs,
)
from repro.experiments.workloads import Figure5Workload
from repro.parallel.engine import SweepRunner
from repro.parallel.spec import uniform_delay_specs

STRATEGIES = ["SEQ", "MA", "DSE"]


@dataclass
class SlowdownPoint:
    """One X position of Figure 6/7: retrieval time of the slowed relation."""

    slowed_relation: str
    retrieval_time: float          #: n_p * w of the slowed relation (X axis)
    wait: float                    #: the w this corresponds to
    response_times: dict[str, float]  #: strategy -> averaged response time
    lwb: float

    def row(self) -> list[str]:
        cells = [f"{self.retrieval_time:.2f}"]
        cells += [f"{self.response_times[s]:.3f}" for s in STRATEGIES]
        cells.append(f"{self.lwb:.3f}")
        return cells


def slowdown_waits(workload: Figure5Workload, slowed_relation: str,
                   retrieval_time: float,
                   params: SimulationParameters) -> dict[str, float]:
    """Mean waits per relation with one relation slowed down.

    ``retrieval_time`` is the total time to retrieve the slowed relation
    entirely (the figures' X axis); every other relation runs at
    ``w_min``.  The slowed relation never goes *below* ``w_min``.
    """
    cardinality = workload.catalog.relation(slowed_relation).cardinality
    slowed_wait = max(params.w_min, retrieval_time / cardinality)
    waits = {name: params.w_min for name in workload.relation_names}
    waits[slowed_relation] = slowed_wait
    return waits


def run_slowdown_experiment(workload: Figure5Workload, slowed_relation: str,
                            retrieval_times: list[float],
                            params: SimulationParameters,
                            repetitions: int | None = None,
                            base_seed: int = 0,
                            runner: Optional[SweepRunner] = None
                            ) -> list[SlowdownPoint]:
    """Measure all strategies across the retrieval-time sweep.

    Every ``(point, strategy, repetition)`` run is independent, so the
    whole sweep is submitted to ``runner`` as one flat batch — with
    ``jobs > 1`` it shards across processes, with a cache directory
    repeated points are served from disk.  Results are folded back in
    deterministic point order.
    """
    if slowed_relation not in workload.relation_names:
        raise ValueError(f"unknown relation {slowed_relation!r}")
    reps = resolve_repetitions(params, repetitions)
    point_waits = [slowdown_waits(workload, slowed_relation, retrieval_time,
                                  params)
                   for retrieval_time in retrieval_times]
    specs = []
    for waits in point_waits:
        specs.extend(point_specs(
            STRATEGIES, workload.scale, workload.tuple_size,
            uniform_delay_specs(waits), params, reps, base_seed))
    results = run_point_specs(specs, runner)

    points = []
    per_point = len(STRATEGIES) * reps
    for p, (retrieval_time, waits) in enumerate(
            zip(retrieval_times, point_waits)):
        measured = measure_points(
            STRATEGIES, results[p * per_point:(p + 1) * per_point], reps)
        points.append(SlowdownPoint(
            slowed_relation=slowed_relation,
            retrieval_time=retrieval_time,
            wait=waits[slowed_relation],
            response_times={s: m.response_time for s, m in measured.items()},
            lwb=lower_bound(workload.qep, waits, params)))
    return points
