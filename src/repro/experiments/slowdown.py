"""The one-slowed-down-relation experiments (Figures 6 and 7).

One input relation's average waiting time ``w`` is increased so that its
total retrieval time (``n_p * w``, the X axis of the figures) sweeps a
range; every other relation stays at ``w_min``.  SEQ, MA and DSE are
measured at each point and the analytic LWB is computed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationParameters
from repro.core.strategies.lwb import lower_bound
from repro.experiments.runner import run_strategies
from repro.experiments.workloads import Figure5Workload
from repro.wrappers.delays import UniformDelay

STRATEGIES = ["SEQ", "MA", "DSE"]


@dataclass
class SlowdownPoint:
    """One X position of Figure 6/7: retrieval time of the slowed relation."""

    slowed_relation: str
    retrieval_time: float          #: n_p * w of the slowed relation (X axis)
    wait: float                    #: the w this corresponds to
    response_times: dict[str, float]  #: strategy -> averaged response time
    lwb: float

    def row(self) -> list[str]:
        cells = [f"{self.retrieval_time:.2f}"]
        cells += [f"{self.response_times[s]:.3f}" for s in STRATEGIES]
        cells.append(f"{self.lwb:.3f}")
        return cells


def slowdown_waits(workload: Figure5Workload, slowed_relation: str,
                   retrieval_time: float,
                   params: SimulationParameters) -> dict[str, float]:
    """Mean waits per relation with one relation slowed down.

    ``retrieval_time`` is the total time to retrieve the slowed relation
    entirely (the figures' X axis); every other relation runs at
    ``w_min``.  The slowed relation never goes *below* ``w_min``.
    """
    cardinality = workload.catalog.relation(slowed_relation).cardinality
    slowed_wait = max(params.w_min, retrieval_time / cardinality)
    waits = {name: params.w_min for name in workload.relation_names}
    waits[slowed_relation] = slowed_wait
    return waits


def run_slowdown_experiment(workload: Figure5Workload, slowed_relation: str,
                            retrieval_times: list[float],
                            params: SimulationParameters,
                            repetitions: int | None = None,
                            base_seed: int = 0) -> list[SlowdownPoint]:
    """Measure all strategies across the retrieval-time sweep."""
    if slowed_relation not in workload.relation_names:
        raise ValueError(f"unknown relation {slowed_relation!r}")
    points = []
    for retrieval_time in retrieval_times:
        waits = slowdown_waits(workload, slowed_relation, retrieval_time,
                               params)

        def delay_factory(waits=waits):
            return {name: UniformDelay(wait) for name, wait in waits.items()}

        measured = run_strategies(workload.catalog, workload.qep, STRATEGIES,
                                  delay_factory, params,
                                  repetitions=repetitions,
                                  base_seed=base_seed)
        points.append(SlowdownPoint(
            slowed_relation=slowed_relation,
            retrieval_time=retrieval_time,
            wait=waits[slowed_relation],
            response_times={s: m.response_time for s, m in measured.items()},
            lwb=lower_bound(workload.qep, waits, params)))
    return points
