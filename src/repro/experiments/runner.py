"""Generic experiment running: repeated measurements, strategy sweeps.

The paper repeats each measurement 3 times and averages (Section 5.1.3);
:func:`average_response_time` does the same with distinct seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.catalog.catalog import Catalog
from repro.config import SimulationParameters
from repro.core.engine import ExecutionResult, QueryEngine
from repro.core.strategies import make_policy
from repro.plan.qep import QEP
from repro.wrappers.delays import DelayModel

#: Builds fresh delay models for one run (models can be stateful).
DelayFactory = Callable[[], Mapping[str, DelayModel]]


@dataclass
class MeasuredPoint:
    """An averaged measurement for one strategy at one parameter point."""

    strategy: str
    response_time: float
    repetitions: int
    last_result: ExecutionResult


def run_once(catalog: Catalog, qep: QEP, strategy: str,
             delay_factory: DelayFactory,
             params: SimulationParameters, seed: int = 0,
             trace: bool = False) -> ExecutionResult:
    """One simulated execution of ``strategy`` ("SEQ", "MA" or "DSE")."""
    engine = QueryEngine(catalog, qep, make_policy(strategy),
                         delay_factory(), params=params, seed=seed,
                         trace=trace)
    return engine.run()


def average_response_time(catalog: Catalog, qep: QEP, strategy: str,
                          delay_factory: DelayFactory,
                          params: SimulationParameters,
                          repetitions: int | None = None,
                          base_seed: int = 0) -> MeasuredPoint:
    """Average the response time over ``repetitions`` seeded runs."""
    reps = repetitions if repetitions is not None else params.repetitions
    if reps < 1:
        raise ValueError(f"repetitions must be >= 1, got {reps}")
    total = 0.0
    result: ExecutionResult | None = None
    for i in range(reps):
        result = run_once(catalog, qep, strategy, delay_factory, params,
                          seed=base_seed + i)
        total += result.response_time
    assert result is not None
    return MeasuredPoint(strategy, total / reps, reps, result)


def run_strategies(catalog: Catalog, qep: QEP, strategies: list[str],
                   delay_factory: DelayFactory,
                   params: SimulationParameters,
                   repetitions: int | None = None,
                   base_seed: int = 0) -> dict[str, MeasuredPoint]:
    """Measure several strategies on identical workloads and seeds."""
    return {
        strategy: average_response_time(
            catalog, qep, strategy, delay_factory, params,
            repetitions=repetitions, base_seed=base_seed)
        for strategy in strategies
    }
