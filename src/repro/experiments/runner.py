"""Generic experiment running: repeated measurements, strategy sweeps.

The paper repeats each measurement 3 times and averages (Section 5.1.3);
:func:`average_response_time` does the same with distinct seeds.

Two entry styles coexist:

* the classic in-process API (:func:`run_once` / :func:`run_strategies`)
  for ad-hoc catalogs and delay factories;
* the spec-based API (:func:`run_point_specs` / :func:`measure_points`)
  used by every sweep driver — runs are described as serializable
  :class:`~repro.parallel.spec.RunSpec` objects and executed through a
  :class:`~repro.parallel.SweepRunner`, which shards them across worker
  processes and serves repeats from the on-disk run cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.config import SimulationParameters
from repro.core.engine import ExecutionResult, QueryEngine
from repro.core.strategies import make_policy
from repro.parallel.engine import SweepRunner
from repro.parallel.spec import RunSpec
from repro.plan.qep import QEP
from repro.wrappers.delays import DelayModel

#: Builds fresh delay models for one run (models can be stateful).
DelayFactory = Callable[[], Mapping[str, DelayModel]]


@dataclass
class MeasuredPoint:
    """An averaged measurement for one strategy at one parameter point."""

    strategy: str
    response_time: float
    repetitions: int
    last_result: ExecutionResult


def run_once(catalog: Catalog, qep: QEP, strategy: str,
             delay_factory: DelayFactory,
             params: SimulationParameters, seed: int = 0,
             trace: bool = False) -> ExecutionResult:
    """One simulated execution of ``strategy`` ("SEQ", "MA" or "DSE")."""
    engine = QueryEngine(catalog, qep, make_policy(strategy),
                         delay_factory(), params=params, seed=seed,
                         trace=trace)
    return engine.run()


def average_response_time(catalog: Catalog, qep: QEP, strategy: str,
                          delay_factory: DelayFactory,
                          params: SimulationParameters,
                          repetitions: int | None = None,
                          base_seed: int = 0) -> MeasuredPoint:
    """Average the response time over ``repetitions`` seeded runs."""
    reps = repetitions if repetitions is not None else params.repetitions
    if reps < 1:
        raise ValueError(f"repetitions must be >= 1, got {reps}")
    total = 0.0
    result: ExecutionResult | None = None
    for i in range(reps):
        result = run_once(catalog, qep, strategy, delay_factory, params,
                          seed=base_seed + i)
        total += result.response_time
    assert result is not None
    return MeasuredPoint(strategy, total / reps, reps, result)


def run_strategies(catalog: Catalog, qep: QEP, strategies: list[str],
                   delay_factory: DelayFactory,
                   params: SimulationParameters,
                   repetitions: int | None = None,
                   base_seed: int = 0) -> dict[str, MeasuredPoint]:
    """Measure several strategies on identical workloads and seeds."""
    return {
        strategy: average_response_time(
            catalog, qep, strategy, delay_factory, params,
            repetitions=repetitions, base_seed=base_seed)
        for strategy in strategies
    }


# -- spec-based running (parallel/cached sweeps) ----------------------------

def resolve_repetitions(params: SimulationParameters,
                        repetitions: int | None) -> int:
    """The repetition count of one measured point (paper default: 3)."""
    reps = repetitions if repetitions is not None else params.repetitions
    if reps < 1:
        raise ValueError(f"repetitions must be >= 1, got {reps}")
    return reps


def point_specs(strategies: Sequence[str], scale: float, tuple_size: int,
                delays: dict[str, dict], params: SimulationParameters,
                repetitions: int, base_seed: int = 0) -> list[RunSpec]:
    """All ``strategy x repetition`` specs of one sweep point, in the
    serial execution order (strategy-major, then seed)."""
    return [
        RunSpec(strategy=strategy, seed=base_seed + i, scale=scale,
                delays=delays, params=params, tuple_size=tuple_size)
        for strategy in strategies
        for i in range(repetitions)
    ]


def run_point_specs(specs: Sequence[RunSpec],
                    runner: Optional[SweepRunner] = None
                    ) -> list[ExecutionResult]:
    """Execute specs through ``runner`` (serial in-process by default)."""
    runner = runner if runner is not None else SweepRunner()
    return runner.run(specs)


def measure_points(strategies: Sequence[str], results:
                   Sequence[ExecutionResult],
                   repetitions: int) -> dict[str, MeasuredPoint]:
    """Fold a strategy-major result list back into averaged points."""
    if len(results) != len(strategies) * repetitions:
        raise ValueError(
            f"expected {len(strategies) * repetitions} results, "
            f"got {len(results)}")
    measured: dict[str, MeasuredPoint] = {}
    for s, strategy in enumerate(strategies):
        chunk = results[s * repetitions:(s + 1) * repetitions]
        total = sum(r.response_time for r in chunk)
        measured[strategy] = MeasuredPoint(
            strategy, total / repetitions, repetitions, chunk[-1])
    return measured
