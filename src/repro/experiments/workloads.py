"""The experiment workload: the Figure 5 query execution plan.

Section 5.1.1: "a fairly simple query: a five-way join, with 4 medium
size (i.e., 100K-200K tuples) input relations and 2 small ones (i.e.,
10K-20K tuples).  The input relations are delivered by distinct
wrappers."

The figure itself is not reproduced in the text we work from, so the
plan is reconstructed from every structural constraint the paper states:

* six sources A..F, four medium (A, B, D, F) and two small (C, E);
* ``pA`` (transitively) blocks ``pB`` and ``pF``, "which represent
  approximately one half of the query execution" (Section 5.2);
* ``pC`` "does not block any other PC" (Section 5.2);
* bushy shape, produced by a classical DP optimizer.

The reconstruction:

    J5( build = J2( build = J1(build A, probe B), probe F ),
        probe = J4( build = J3(build E, probe D), probe C ) )

with pipeline chains (iterator order)::

    pA: scan(A) -> mat[J1]
    pB: scan(B) -> probe[J1] -> mat[J2]
    pF: scan(F) -> probe[J2] -> mat[J5]
    pE: scan(E) -> mat[J3]
    pD: scan(D) -> probe[J3] -> mat[J4]
    pC: scan(C) -> probe[J4] -> probe[J5] -> output
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Relation
from repro.catalog.statistics import JoinStatistics
from repro.plan.builder import build_qep
from repro.plan.qep import QEP
from repro.plan.validation import validate_qep
from repro.query.tree import JoinTree, Query

#: Base-relation cardinalities (paper: 4 medium 100K-200K, 2 small 10K-20K).
FIGURE5_CARDINALITIES = {
    "A": 100_000,
    "B": 150_000,
    "C": 20_000,
    "D": 120_000,
    "E": 10_000,
    "F": 180_000,
}

#: Target intermediate-result sizes, chosen to keep them moderate.
FIGURE5_INTERMEDIATES = {
    "J1": 100_000,   # A ⋈ B
    "J2": 120_000,   # J1 ⋈ F
    "J3": 60_000,    # E ⋈ D
    "J4": 30_000,    # J3 ⋈ C
    "J5": 50_000,    # J2 ⋈ J4 (the final result)
}


def _selectivities(cards: dict[str, int],
                   targets: dict[str, int]) -> dict[tuple[str, str], float]:
    """Join-edge selectivities hitting the target intermediate sizes."""
    return {
        ("A", "B"): targets["J1"] / (cards["A"] * cards["B"]),
        ("B", "F"): targets["J2"] / (targets["J1"] * cards["F"]),
        ("D", "E"): targets["J3"] / (cards["D"] * cards["E"]),
        ("C", "D"): targets["J4"] / (targets["J3"] * cards["C"]),
        ("C", "F"): targets["J5"] / (targets["J2"] * targets["J4"]),
    }


#: Selectivities of the full-size workload (kept as a public constant).
FIGURE5_SELECTIVITIES = {
    ("A", "B"): 100_000 / (100_000 * 150_000),
    ("B", "F"): 120_000 / (100_000 * 180_000),
    ("D", "E"): 60_000 / (120_000 * 10_000),
    ("C", "D"): 30_000 / (60_000 * 20_000),
    ("C", "F"): 50_000 / (120_000 * 30_000),
}


@dataclass
class Figure5Workload:
    """Catalog, query and QEP of the experiments' workload."""

    catalog: Catalog
    query: Query
    tree: JoinTree
    qep: QEP
    #: build parameters, recorded so a worker process (or a cache key)
    #: can reconstruct this exact workload from two numbers.
    scale: float = 1.0
    tuple_size: int = 40

    @property
    def relation_names(self) -> list[str]:
        return self.query.relation_names


def figure5_workload(tuple_size: int = 40,
                     scale: float = 1.0) -> Figure5Workload:
    """Build the (reconstructed) Figure 5 workload.

    ``scale`` shrinks (or grows) every base relation and intermediate
    result proportionally — handy for fast tests; 1.0 is the paper size.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    cards = {name: max(1, round(card * scale))
             for name, card in FIGURE5_CARDINALITIES.items()}
    targets = {name: max(1, round(card * scale))
               for name, card in FIGURE5_INTERMEDIATES.items()}
    relations = [Relation(name, cardinality, tuple_size)
                 for name, cardinality in cards.items()]
    statistics = JoinStatistics(_selectivities(cards, targets))
    catalog = Catalog(relations, statistics, result_tuple_size=tuple_size)
    query = Query(catalog, list(FIGURE5_CARDINALITIES))

    leaf = JoinTree.leaf
    join = JoinTree.join
    left = join(join(leaf("A"), leaf("B")), leaf("F"))
    right = join(join(leaf("E"), leaf("D")), leaf("C"))
    tree = join(left, right)

    qep = build_qep(catalog, tree)
    validate_qep(qep)
    return Figure5Workload(catalog, query, tree, qep,
                           scale=scale, tuple_size=tuple_size)
