"""Closed-form performance models for cross-validating the simulator.

The paper notes that "the sequential execution performance results are
easy to predict analytically" (Section 5.1.2) and uses SEQ as the
baseline precisely because of that.  This module writes those
predictions down:

* **SEQ** — chains run one at a time in iterator order; within a chain,
  processing overlaps retrieval (the queue buffers), so each chain costs
  ``max(retrieval, processing)`` of the tuples *not yet buffered*, plus
  the head start earlier chains gave the wrapper (bounded by the queue
  capacity).  We use the simpler upper/lower envelope:
  ``Σ_p max(n_p·w_p, n_p·c_p)`` bounded below by the LWB.
* **DSE bound** — the best any schedule can do:
  ``max(total CPU work, slowest retrieval)`` (this *is* the LWB).

These models intentionally ignore second-order effects (window-protocol
head starts, receive-CPU contention bursts, materialization overheads),
so tests compare with a tolerance band — close agreement validates that
the simulator's accounting matches the arithmetic the paper reasons
with.
"""

from __future__ import annotations

from typing import Mapping

from repro.config import SimulationParameters
from repro.core.metrics import chain_cpu_seconds_per_source_tuple
from repro.plan.qep import QEP


def predicted_seq_response(qep: QEP, mean_waits: Mapping[str, float],
                           params: SimulationParameters) -> float:
    """Analytic SEQ response time: per-chain max(retrieval, processing).

    Slightly optimistic: it ignores the receive-CPU the engine spends on
    *other* wrappers' arrivals while a chain runs, and slightly
    pessimistic: it ignores the head start buffered by the window
    protocol before a chain begins.  The two roughly cancel.
    """
    total = 0.0
    for chain in qep.chains:
        tuples = chain.scan.estimated_input_cardinality
        wait = mean_waits[chain.source_relation]
        cpu = chain_cpu_seconds_per_source_tuple(
            chain.operators, params, include_receive=True, use_actuals=True)
        total += max(tuples * wait, tuples * cpu)
    return total


def predicted_best_response(qep: QEP, mean_waits: Mapping[str, float],
                            params: SimulationParameters) -> float:
    """The schedule-independent floor: CPU work vs slowest retrieval."""
    total_cpu = 0.0
    slowest = 0.0
    for chain in qep.chains:
        tuples = chain.scan.estimated_input_cardinality
        cpu = chain_cpu_seconds_per_source_tuple(
            chain.operators, params, include_receive=True, use_actuals=True)
        total_cpu += tuples * cpu
        slowest = max(slowest, tuples * mean_waits[chain.source_relation])
    return max(total_cpu, slowest)


def predicted_ma_response(qep: QEP, mean_waits: Mapping[str, float],
                          params: SimulationParameters) -> float:
    """Analytic MA response: materialize-all phase, then local execution.

    Phase 1 overlaps every wrapper's retrieval but must push all tuples
    through the mediator (receive + scan + mat move + write I/O); phase 2
    replays everything from disk through the pipelines.
    """
    total_tuples = sum(chain.scan.estimated_input_cardinality
                       for chain in qep.chains)
    slowest = max(chain.scan.estimated_input_cardinality
                  * mean_waits[chain.source_relation]
                  for chain in qep.chains)
    per_tuple_ingest = (params.receive_cpu_seconds_per_tuple()
                        + params.instructions_seconds(
                            2 * params.move_tuple_instructions))
    write_io = total_tuples * params.io_seconds_per_tuple()
    phase1 = max(slowest, total_tuples * per_tuple_ingest, write_io)

    phase2_cpu = 0.0
    for chain in qep.chains:
        tuples = chain.scan.estimated_input_cardinality
        cpu = chain_cpu_seconds_per_source_tuple(
            chain.operators, params, include_receive=False, use_actuals=True)
        # Reading back from the temp adds one extra move per tuple.
        cpu += params.instructions_seconds(params.move_tuple_instructions)
        phase2_cpu += tuples * cpu
    read_io = total_tuples * params.io_seconds_per_tuple()
    phase2 = max(phase2_cpu, read_io)
    return phase1 + phase2
