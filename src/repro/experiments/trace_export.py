"""Export executions as Chrome-tracing timelines.

``write_chrome_trace`` turns an :class:`ExecutionResult` into the Trace
Event JSON consumed by ``chrome://tracing`` / Perfetto: one lane per
pipeline chain with a complete-event span per fragment, plus instant
events for the scheduler's decisions (degradations, MF stops, memory
splits, plan revisions) when the run was traced.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.engine import ExecutionResult

#: trace categories exported as instant events, when a tracer is present.
DECISION_CATEGORIES = (
    "degrade", "mf-stop", "cf-create", "memory-split", "reopt-swap",
    "rate-change", "timeout", "chain-complete",
)

_SECONDS_TO_US = 1e6


def chrome_trace_events(result: ExecutionResult) -> list[dict[str, Any]]:
    """The trace-event list for ``result`` (fragments + decisions)."""
    events: list[dict[str, Any]] = []
    chains = sorted({stat.chain for stat in result.fragment_stats.values()})
    tids = {chain: i + 1 for i, chain in enumerate(chains)}

    for stat in result.timeline():
        if stat.started_at is None or stat.finished_at is None:
            continue
        # A chain can appear in the timeline without being in the initial
        # map (e.g. CF-only views of a run); allocate its lane on demand
        # instead of raising KeyError.
        tid = tids.setdefault(stat.chain, len(tids) + 1)
        events.append({
            "name": stat.name,
            "cat": stat.kind,
            "ph": "X",
            "ts": stat.started_at * _SECONDS_TO_US,
            "dur": max(1.0, (stat.finished_at - stat.started_at)
                       * _SECONDS_TO_US),
            "pid": 1,
            "tid": tid,
            "args": {
                "tuples_in": stat.tuples_in,
                "tuples_out": stat.tuples_out,
                "batches": stat.batches,
                "cpu_seconds": stat.cpu_seconds,
            },
        })

    # After the span loop, so lanes allocated on demand get names too.
    for chain, tid in tids.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": chain},
        })

    if result.tracer is not None:
        # The audit log carries the numbers behind each decision (critical
        # degree, bmi vs bmt, memory in use); fold them into the matching
        # instant's args so the timeline shows *why*, not just *when*.
        audit_args: dict[tuple[str, str, float], dict[str, Any]] = {
            (record.kind, record.subject, record.time): record.args()
            for record in result.decisions
        }
        for category in DECISION_CATEGORIES:
            for trace_event in result.tracer.filter(category):
                args = dict(trace_event.payload)
                args.update(audit_args.get(
                    (category, trace_event.message, trace_event.time), {}))
                events.append({
                    "name": f"{category}: {trace_event.message}",
                    "cat": "decision",
                    "ph": "i",
                    "s": "g",
                    "ts": trace_event.time * _SECONDS_TO_US,
                    "pid": 1,
                    "tid": 0,
                    "args": args,
                })
    return events


def write_chrome_trace(path: "str | Path",
                       result: ExecutionResult) -> Path:
    """Write ``result`` as a Chrome-tracing JSON file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(result),
        "displayTimeUnit": "ms",
        "otherData": {"strategy": result.strategy,
                      "response_time_s": result.response_time},
    }
    target.write_text(json.dumps(payload, default=str))
    return target.resolve()
