"""Plain-text table rendering and CSV export for experiment reports."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Render an aligned text table (right-aligned numeric-ish cells)."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(widths[i])
                         for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def write_csv(path: "str | Path", headers: Sequence[str],
              rows: Sequence[Sequence[str]]) -> Path:
    """Write an experiment table as CSV (for external plotting).

    Returns the resolved path.  Parent directories are created.
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match {columns} headers")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target.resolve()
