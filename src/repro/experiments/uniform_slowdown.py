"""The several-slowed-down-relations experiment (Figure 8).

All wrappers get the same increasing ``w_min``; the figure plots the
performance *gain* of DSE over SEQ:  ``gain = (SEQ - DSE) / SEQ``.
High ``w_min`` stands for slow networks, low for fast ones (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationParameters
from repro.core.strategies.lwb import lower_bound
from repro.experiments.runner import run_strategies
from repro.experiments.workloads import Figure5Workload
from repro.wrappers.delays import UniformDelay


@dataclass
class GainPoint:
    """One X position of Figure 8."""

    w_min: float
    seq_response: float
    dse_response: float
    lwb: float

    @property
    def gain(self) -> float:
        """DSE's relative gain over SEQ (the figure's Y axis)."""
        if self.seq_response <= 0:
            return 0.0
        return (self.seq_response - self.dse_response) / self.seq_response

    def row(self) -> list[str]:
        return [f"{self.w_min * 1e6:.0f}", f"{self.seq_response:.3f}",
                f"{self.dse_response:.3f}", f"{self.gain * 100:.1f}",
                f"{self.lwb:.3f}"]


def run_uniform_slowdown_experiment(workload: Figure5Workload,
                                    w_values: list[float],
                                    params: SimulationParameters,
                                    repetitions: int | None = None,
                                    base_seed: int = 0) -> list[GainPoint]:
    """Sweep the common ``w_min`` and measure SEQ vs DSE."""
    points = []
    for w in w_values:
        point_params = params.with_overrides(w_min=w)
        waits = {name: w for name in workload.relation_names}

        def delay_factory(w=w):
            return {name: UniformDelay(w) for name in workload.relation_names}

        measured = run_strategies(workload.catalog, workload.qep,
                                  ["SEQ", "DSE"], delay_factory, point_params,
                                  repetitions=repetitions,
                                  base_seed=base_seed)
        points.append(GainPoint(
            w_min=w,
            seq_response=measured["SEQ"].response_time,
            dse_response=measured["DSE"].response_time,
            lwb=lower_bound(workload.qep, waits, point_params)))
    return points
