"""The several-slowed-down-relations experiment (Figure 8).

All wrappers get the same increasing ``w_min``; the figure plots the
performance *gain* of DSE over SEQ:  ``gain = (SEQ - DSE) / SEQ``.
High ``w_min`` stands for slow networks, low for fast ones (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SimulationParameters
from repro.core.strategies.lwb import lower_bound
from repro.experiments.runner import (
    measure_points,
    point_specs,
    resolve_repetitions,
    run_point_specs,
)
from repro.experiments.workloads import Figure5Workload
from repro.parallel.engine import SweepRunner
from repro.parallel.spec import uniform_delay_specs


@dataclass
class GainPoint:
    """One X position of Figure 8."""

    w_min: float
    seq_response: float
    dse_response: float
    lwb: float

    @property
    def gain(self) -> float:
        """DSE's relative gain over SEQ (the figure's Y axis)."""
        if self.seq_response <= 0:
            return 0.0
        return (self.seq_response - self.dse_response) / self.seq_response

    def row(self) -> list[str]:
        return [f"{self.w_min * 1e6:.0f}", f"{self.seq_response:.3f}",
                f"{self.dse_response:.3f}", f"{self.gain * 100:.1f}",
                f"{self.lwb:.3f}"]


STRATEGIES = ["SEQ", "DSE"]


def run_uniform_slowdown_experiment(workload: Figure5Workload,
                                    w_values: list[float],
                                    params: SimulationParameters,
                                    repetitions: int | None = None,
                                    base_seed: int = 0,
                                    runner: Optional[SweepRunner] = None
                                    ) -> list[GainPoint]:
    """Sweep the common ``w_min`` and measure SEQ vs DSE.

    Like :func:`~repro.experiments.slowdown.run_slowdown_experiment`,
    the whole sweep goes to ``runner`` as one flat batch of independent
    runs (sharded / cached), then folds back in point order.
    """
    reps = resolve_repetitions(params, repetitions)
    point_params = [params.with_overrides(w_min=w) for w in w_values]
    specs = []
    for w, p_params in zip(w_values, point_params):
        waits = {name: w for name in workload.relation_names}
        specs.extend(point_specs(
            STRATEGIES, workload.scale, workload.tuple_size,
            uniform_delay_specs(waits), p_params, reps, base_seed))
    results = run_point_specs(specs, runner)

    points = []
    per_point = len(STRATEGIES) * reps
    for p, (w, p_params) in enumerate(zip(w_values, point_params)):
        measured = measure_points(
            STRATEGIES, results[p * per_point:(p + 1) * per_point], reps)
        waits = {name: w for name in workload.relation_names}
        points.append(GainPoint(
            w_min=w,
            seq_response=measured["SEQ"].response_time,
            dse_response=measured["DSE"].response_time,
            lwb=lower_bound(workload.qep, waits, p_params)))
    return points
