"""Experiment harness: the paper's workloads, sweeps and reports.

Every table and figure of Section 5 has a runner here; the benchmark
suite under ``benchmarks/`` calls these and prints the same rows/series
the paper reports.
"""

from repro.experiments.workloads import Figure5Workload, figure5_workload
from repro.experiments.runner import (
    MeasuredPoint,
    average_response_time,
    run_once,
    run_strategies,
)
from repro.experiments.slowdown import (
    SlowdownPoint,
    run_slowdown_experiment,
    slowdown_waits,
)
from repro.experiments.uniform_slowdown import (
    GainPoint,
    run_uniform_slowdown_experiment,
)
from repro.experiments.multiquery import (
    ThroughputPoint,
    run_multiquery_experiment,
)
from repro.experiments.analysis import (
    TimeBreakdown,
    comparison_report,
    time_breakdown,
)
from repro.experiments.report import format_table
from repro.experiments.reproduce import generate_all
from repro.experiments.trace_export import (
    chrome_trace_events,
    write_chrome_trace,
)

__all__ = [
    "Figure5Workload",
    "GainPoint",
    "MeasuredPoint",
    "SlowdownPoint",
    "ThroughputPoint",
    "TimeBreakdown",
    "average_response_time",
    "chrome_trace_events",
    "comparison_report",
    "figure5_workload",
    "format_table",
    "generate_all",
    "run_multiquery_experiment",
    "run_once",
    "run_slowdown_experiment",
    "run_strategies",
    "run_uniform_slowdown_experiment",
    "slowdown_waits",
    "time_breakdown",
    "write_chrome_trace",
]
