"""Post-run analysis: where did the response time go?

The paper diagnoses strategies by decomposing response time into useful
work and stalls (Sections 5.2–5.4).  :func:`time_breakdown` splits one
execution's response time into the engine's CPU work, engine stalls, and
the remainder (time the CPU was held by communication/IO bookkeeping or
the processor waited behind them); :func:`comparison_report` renders a
side-by-side anatomy of several strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import ExecutionResult
from repro.experiments.report import format_table


@dataclass(frozen=True)
class TimeBreakdown:
    """Decomposition of one execution's response time."""

    response_time: float
    fragment_cpu: float     #: CPU spent inside query fragments
    overhead_cpu: float     #: CPU spent elsewhere (receive, I/O, planning)
    stall_time: float       #: DQP waiting with nothing to do
    other_time: float       #: residual (CPU idle without a tracked stall)

    @property
    def useful_fraction(self) -> float:
        if self.response_time <= 0:
            return 0.0
        return self.fragment_cpu / self.response_time

    def rows(self) -> list[list[str]]:
        def row(label: str, value: float) -> list[str]:
            share = value / self.response_time if self.response_time else 0.0
            return [label, f"{value:.3f}", f"{share:.0%}"]

        return [
            row("fragment CPU (operator work)", self.fragment_cpu),
            row("overhead CPU (receive/IO/planning)", self.overhead_cpu),
            row("engine stalls (no data anywhere)", self.stall_time),
            row("other (waiting behind CPU/disk)", self.other_time),
        ]


def time_breakdown(result: ExecutionResult) -> TimeBreakdown:
    """Decompose ``result``'s response time."""
    fragment_cpu = sum(stat.cpu_seconds
                       for stat in result.fragment_stats.values())
    overhead_cpu = max(0.0, result.cpu_busy_time - fragment_cpu)
    other = max(0.0, result.response_time - result.cpu_busy_time
                - result.stall_time)
    return TimeBreakdown(
        response_time=result.response_time,
        fragment_cpu=fragment_cpu,
        overhead_cpu=overhead_cpu,
        stall_time=result.stall_time,
        other_time=other)


def comparison_report(results: dict[str, ExecutionResult],
                      title: str = "Strategy anatomy") -> str:
    """Side-by-side response-time anatomy of several strategies."""
    if not results:
        raise ValueError("no results to compare")
    headers = ["component"] + list(results)
    breakdowns = {name: time_breakdown(result)
                  for name, result in results.items()}
    labels = [row[0] for row in next(iter(breakdowns.values())).rows()]
    rows = []
    for i, label in enumerate(labels):
        rows.append([label] + [breakdowns[name].rows()[i][1]
                               for name in results])
    rows.append(["response time (s)"]
                + [f"{results[name].response_time:.3f}" for name in results])
    rows.append(["result tuples"]
                + [str(results[name].result_tuples) for name in results])
    return format_table(headers, rows, title=title)
