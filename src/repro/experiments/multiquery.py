"""Multi-query throughput vs response time (the paper's Section 6).

"As soon as we consider such context, we face the classical tradeoff
between throughput and response time.  Indeed, our strategy can reduce
significantly the response time at the expense of a potential increase
of total work."

:func:`run_multiquery_experiment` submits ``n`` copies of the Figure 5
query, staggered by a fixed inter-arrival time, with every query using
the same strategy, and reports per-strategy mean response time, makespan
and throughput.  Sweeping the per-tuple wait shows both regimes: with a
CPU-saturated mediator and fast sources, DSE's extra materialization
work costs throughput; with slow sources there is idle time to reclaim
and DSE wins on both metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SimulationParameters
from repro.core.multiquery import MultiQueryResult
from repro.experiments.workloads import Figure5Workload
from repro.parallel.engine import SweepRunner
from repro.parallel.spec import MultiQuerySpec


@dataclass
class ThroughputPoint:
    """One strategy's aggregate behaviour for a query batch."""

    strategy: str
    wait: float
    num_queries: int
    mean_response: float
    max_response: float
    makespan: float
    throughput: float
    cpu_utilization: float
    result: MultiQueryResult

    def row(self) -> list[str]:
        return [self.strategy, f"{self.wait * 1e6:.0f}",
                f"{self.mean_response:.3f}", f"{self.makespan:.3f}",
                f"{self.throughput:.3f}", f"{self.cpu_utilization:.0%}"]


def run_multiquery_experiment(workload: Figure5Workload,
                              strategies: list[str],
                              waits: list[float],
                              params: SimulationParameters,
                              num_queries: int = 4,
                              inter_arrival: float = 0.0,
                              seed: int = 0,
                              runner: Optional[SweepRunner] = None
                              ) -> list[ThroughputPoint]:
    """Run the batch for every (strategy, wait) combination.

    Each combination is an independent multi-query simulation, so all of
    them go to ``runner`` as one flat batch (sharded / cached) and fold
    back in ``(wait, strategy)`` order.
    """
    if num_queries < 1:
        raise ValueError(f"need >= 1 query, got {num_queries}")
    runner = runner if runner is not None else SweepRunner()
    specs = [
        MultiQuerySpec(strategy=strategy, wait=wait,
                       num_queries=num_queries, seed=seed,
                       scale=workload.scale, inter_arrival=inter_arrival,
                       params=params, tuple_size=workload.tuple_size)
        for wait in waits
        for strategy in strategies
    ]
    results = runner.run(specs)
    return [
        ThroughputPoint(
            strategy=spec.strategy,
            wait=spec.wait,
            num_queries=num_queries,
            mean_response=result.mean_response_time,
            max_response=result.max_response_time,
            makespan=result.makespan,
            throughput=result.throughput,
            cpu_utilization=result.cpu_utilization,
            result=result)
        for spec, result in zip(specs, results)
    ]
