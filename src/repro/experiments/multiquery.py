"""Multi-query throughput vs response time (the paper's Section 6).

"As soon as we consider such context, we face the classical tradeoff
between throughput and response time.  Indeed, our strategy can reduce
significantly the response time at the expense of a potential increase
of total work."

:func:`run_multiquery_experiment` submits ``n`` copies of the Figure 5
query, staggered by a fixed inter-arrival time, with every query using
the same strategy, and reports per-strategy mean response time, makespan
and throughput.  Sweeping the per-tuple wait shows both regimes: with a
CPU-saturated mediator and fast sources, DSE's extra materialization
work costs throughput; with slow sources there is idle time to reclaim
and DSE wins on both metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import SimulationParameters
from repro.core.multiquery import MultiQueryResult
from repro.experiments.workloads import Figure5Workload
from repro.parallel.engine import SweepRunner
from repro.parallel.spec import MultiQuerySpec


@dataclass
class ThroughputPoint:
    """One strategy's aggregate behaviour for a query batch."""

    strategy: str
    wait: float
    num_queries: int
    mean_response: float
    max_response: float
    makespan: float
    throughput: float
    cpu_utilization: float
    result: MultiQueryResult
    #: global mediator pool the batch ran under (None: ungoverned).
    global_memory_bytes: Optional[int] = None
    #: queries the admission controller made wait before starting.
    queued_queries: int = 0
    #: mean admission-queue wait across all queries in the batch.
    mean_admission_wait: float = 0.0

    def row(self) -> list[str]:
        pool = ("inf" if self.global_memory_bytes is None
                else f"{self.global_memory_bytes // 1024}K")
        return [self.strategy, f"{self.wait * 1e6:.0f}", pool,
                f"{self.mean_response:.3f}", f"{self.makespan:.3f}",
                f"{self.throughput:.3f}", f"{self.cpu_utilization:.0%}",
                f"{self.queued_queries}", f"{self.mean_admission_wait:.3f}"]


def run_multiquery_experiment(workload: Figure5Workload,
                              strategies: list[str],
                              waits: list[float],
                              params: SimulationParameters,
                              num_queries: int = 4,
                              inter_arrival: float = 0.0,
                              seed: int = 0,
                              runner: Optional[SweepRunner] = None,
                              global_memories: Optional[
                                  list[Optional[int]]] = None,
                              admission: str = "fifo",
                              memory_bytes: Optional[int] = None,
                              min_memory_bytes: Optional[int] = None,
                              max_memory_bytes: Optional[int] = None,
                              ) -> list[ThroughputPoint]:
    """Run the batch for every (strategy, wait, global pool) combination.

    Each combination is an independent multi-query simulation, so all of
    them go to ``runner`` as one flat batch (sharded / cached) and fold
    back in ``(pool, wait, strategy)`` order.  ``global_memories`` adds
    the resource-governance axis: each entry is a mediator-wide memory
    pool (``None`` for the classic ungoverned run) under which the whole
    batch competes for leases through the admission controller, exposing
    the throughput cost of queueing versus the response-time cost of
    thrashing.
    """
    if num_queries < 1:
        raise ValueError(f"need >= 1 query, got {num_queries}")
    runner = runner if runner is not None else SweepRunner()
    pools: list[Optional[int]] = (
        global_memories if global_memories else [None])
    specs = [
        MultiQuerySpec(strategy=strategy, wait=wait,
                       num_queries=num_queries, seed=seed,
                       scale=workload.scale, inter_arrival=inter_arrival,
                       params=params, tuple_size=workload.tuple_size,
                       memory_bytes=memory_bytes,
                       min_memory_bytes=min_memory_bytes,
                       max_memory_bytes=max_memory_bytes,
                       global_memory_bytes=pool,
                       admission=admission if pool is not None else "none")
        for pool in pools
        for wait in waits
        for strategy in strategies
    ]
    results = runner.run(specs)
    return [
        ThroughputPoint(
            strategy=spec.strategy,
            wait=spec.wait,
            num_queries=num_queries,
            mean_response=result.mean_response_time,
            max_response=result.max_response_time,
            makespan=result.makespan,
            throughput=result.throughput,
            cpu_utilization=result.cpu_utilization,
            result=result,
            global_memory_bytes=spec.global_memory_bytes,
            queued_queries=result.queued_queries,
            mean_admission_wait=result.mean_admission_wait)
        for spec, result in zip(specs, results)
    ]
