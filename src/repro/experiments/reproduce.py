"""One-shot reproduction: regenerate every paper artifact into a directory.

``generate_all`` runs each experiment of the evaluation section (plus the
extensions) and writes a text report and one CSV per series — the whole
reproduction package in one call, scriptable via
``python -m repro reproduce --outdir results/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional

from repro.config import SimulationParameters
from repro.experiments.multiquery import run_multiquery_experiment
from repro.experiments.report import format_table, write_csv
from repro.experiments.slowdown import STRATEGIES, run_slowdown_experiment
from repro.experiments.uniform_slowdown import run_uniform_slowdown_experiment
from repro.experiments.workloads import figure5_workload
from repro.parallel.engine import SweepRunner

#: default sweep points (the paper's ranges).
RETRIEVAL_TIMES = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
W_VALUES_US = [5, 10, 15, 20, 35, 50, 80, 120]

ProgressFn = Callable[[str], None]


def generate_all(outdir: "str | Path", *, scale: float = 1.0,
                 repetitions: int = 1, seed: int = 1,
                 params: Optional[SimulationParameters] = None,
                 progress: Optional[ProgressFn] = None,
                 runner: Optional[SweepRunner] = None) -> Path:
    """Regenerate Table 1 and Figures 5–8 (plus extensions) into ``outdir``.

    Returns the output directory.  ``scale`` shrinks the workload for
    quick runs; ``repetitions`` averages seeded repetitions as in the
    paper (3) — the default 1 keeps the full-scale run under a minute.
    ``runner`` shards the sweeps across worker processes and/or serves
    repeated points from the run cache (``repro reproduce --jobs N
    --cache-dir DIR``); results are identical to a serial run.
    """
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    params = params if params is not None else SimulationParameters()
    runner = runner if runner is not None else SweepRunner()
    workload = figure5_workload(scale=scale)
    say = progress if progress is not None else (lambda _msg: None)
    report: list[str] = []

    # Table 1 -----------------------------------------------------------
    say("table1")
    rows = [list(r) for r in params.table1_rows()]
    report.append(format_table(["Parameter", "Value"], rows,
                               title="Table 1: Simulation parameters"))
    write_csv(out / "table1.csv", ["parameter", "value"], rows)

    # Figure 5 ------------------------------------------------------------
    say("fig5")
    report.append("Figure 5 QEP (reconstruction):\n" + workload.qep.describe())

    # Figures 6 and 7 -----------------------------------------------------
    for relation, figure in (("A", "fig6"), ("F", "fig7")):
        say(figure)
        points = run_slowdown_experiment(
            workload, relation, RETRIEVAL_TIMES, params,
            repetitions=repetitions, base_seed=seed, runner=runner)
        headers = ["retrieval_s"] + STRATEGIES + ["LWB"]
        rows = [p.row() for p in points]
        report.append(format_table(
            headers, rows,
            title=f"Figure {'6' if relation == 'A' else '7'}: "
                  f"one slowed-down relation ({relation})"))
        write_csv(out / f"{figure}.csv", headers, rows)

    # Figure 8 ------------------------------------------------------------
    say("fig8")
    points = run_uniform_slowdown_experiment(
        workload, [w * 1e-6 for w in W_VALUES_US], params,
        repetitions=repetitions, base_seed=seed, runner=runner)
    headers = ["w_min_us", "SEQ_s", "DSE_s", "gain_pct", "LWB_s"]
    rows = [p.row() for p in points]
    report.append(format_table(headers, rows,
                               title="Figure 8: DSE gain over SEQ vs w_min"))
    write_csv(out / "fig8.csv", headers, rows)

    # Extension: multi-query ----------------------------------------------
    say("multiquery")
    multi_workload = (workload if scale <= 0.25
                      else figure5_workload(scale=0.2 * scale))
    multi = run_multiquery_experiment(
        multi_workload, ["SEQ", "DSE"],
        [params.w_min, 5 * params.w_min], params,
        num_queries=4, seed=seed, runner=runner)
    headers = ["strategy", "w_us", "pool", "mean_resp_s", "makespan_s",
               "queries_per_s", "cpu", "queued", "mean_wait_s"]
    rows = [p.row() for p in multi]
    report.append(format_table(headers, rows,
                               title="Extension: 4 concurrent queries"))
    write_csv(out / "multiquery.csv", headers, rows)

    (out / "REPORT.txt").write_text("\n\n".join(report) + "\n")
    say("done")
    return out
