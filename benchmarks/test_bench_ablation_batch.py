"""Ablation — batch size and context-switch overhead (Section 3.2).

"The rationale behind considering batches of tuples rather than
individual tuples is to reduce the potential overheads due to frequent
switches between scheduled query fragments."  This sweep measures DSE
across batch sizes, with and without a context-switch cost.

Expected shape: with a nonzero switch cost, tiny batches hurt (more
switches); the effect disappears when switching is free.
"""

from conftest import run_measured

from repro.experiments import format_table
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

BATCH_SIZES = [25, 100, 400, 1600]
SWITCH_COSTS = [0.0, 10_000.0]


def test_ablation_batch_size(benchmark, small_workload, params):
    def factory():
        return {name: UniformDelay(params.w_min)
                for name in small_workload.relation_names}

    def sweep():
        grid = {}
        for switch in SWITCH_COSTS:
            for batch in BATCH_SIZES:
                point_params = params.with_overrides(
                    batch_tuples=batch, context_switch_instructions=switch)
                grid[(switch, batch)] = run_once(
                    small_workload.catalog, small_workload.qep, "DSE",
                    factory, point_params, seed=3)
            # Footnote 1: "batch size can vary dynamically".
            point_params = params.with_overrides(
                adaptive_batching=True, context_switch_instructions=switch)
            grid[(switch, "adaptive")] = run_once(
                small_workload.catalog, small_workload.qep, "DSE",
                factory, point_params, seed=3)
        return grid

    grid = run_measured(benchmark, sweep)
    print()
    rows = []
    for (switch, batch), result in grid.items():
        rows.append([f"{switch:g}", str(batch),
                     f"{result.response_time:.3f}",
                     str(result.context_switches),
                     str(result.batches_processed)])
    print(format_table(
        ["switch cost (instr)", "batch (tuples)", "response (s)",
         "switches", "batches"],
        rows, title="DSE vs batch size and context-switch cost"))

    # Smaller batches mean more switches.
    assert (grid[(10_000.0, 25)].context_switches
            >= grid[(10_000.0, 1600)].context_switches)
    # With expensive switches, tiny batches are slower than large ones.
    assert (grid[(10_000.0, 25)].response_time
            >= grid[(10_000.0, 1600)].response_time * 0.999)
    # Adaptive batching is competitive with the best fixed size.
    for switch in SWITCH_COSTS:
        best_fixed = min(grid[(switch, b)].response_time
                         for b in BATCH_SIZES)
        assert grid[(switch, "adaptive")].response_time <= best_fixed * 1.1
    # All configurations agree on the answer.
    assert len({r.result_tuples for r in grid.values()}) == 1
