"""Figure 8 — several slowed-down input relations.

All wrappers share an increasing ``w_min``; the figure plots DSE's gain
over SEQ.  Expected shape (Section 5.3): the gain "increases with the
w_min value and goes up to 70%"; at very fast networks (small w_min) the
engine is CPU-bound and the gain vanishes; the paper's 100 Mb/s operating
point (w_min = 20 µs) sits partway up the curve.
"""

from conftest import run_measured

from repro.experiments import format_table, run_uniform_slowdown_experiment

W_VALUES = [5e-6, 10e-6, 15e-6, 20e-6, 35e-6, 50e-6, 80e-6, 120e-6]


def test_fig8_uniform_slowdown(benchmark, workload, params):
    points = run_measured(
        benchmark,
        lambda: run_uniform_slowdown_experiment(workload, W_VALUES, params,
                                                repetitions=1))
    print()
    print(format_table(
        ["w_min (µs)", "SEQ (s)", "DSE (s)", "gain (%)", "LWB (s)"],
        [p.row() for p in points],
        title="Figure 8: DSE gain over SEQ vs w_min"))

    by_w = {round(p.w_min * 1e6): p for p in points}

    # Fast network: CPU-bound, no gain to be had (|gain| small).
    assert abs(by_w[5].gain) < 0.05

    # The paper's 100 Mb/s point (20 µs) shows a clear gain.
    assert by_w[20].gain > 0.2

    # The gain grows toward a high plateau (paper: up to 70%).
    assert by_w[120].gain > 0.55
    assert by_w[120].gain > by_w[20].gain > by_w[5].gain

    # The plateau is bounded by the structural limit
    # 1 - max_p(n_p)/sum_p(n_p) (retrieval overlap cannot do better).
    cards = [r.cardinality for r in workload.catalog]
    structural = 1 - max(cards) / sum(cards)
    assert by_w[120].gain <= structural + 0.05
