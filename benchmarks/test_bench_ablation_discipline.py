"""Ablation — the DQP's service discipline (Section 3.2).

"After each batch processing, the DQP returns to the highest priority
queue."  Does strict priority actually matter, or would round-robin
among data-ready fragments do just as well?  This sweep runs DSE under
both disciplines at w_min and with F slowed.

Expected shape: at w_min (everything dense, comparable priorities) the
disciplines are close; with one slow source, strict priority serves the
sparse critical fragment the moment its rare data lands, while
round-robin lets it queue behind a full rotation — priority wins.
"""

from conftest import run_measured

from repro.experiments import format_table, slowdown_waits
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

SCENARIOS = [("w_min", 0.0), ("F slowed to 8s", 8.0)]


def test_ablation_discipline(benchmark, workload, params):
    def measure(retrieval_f, discipline):
        waits = slowdown_waits(workload, "F", retrieval_f, params)
        point_params = params.with_overrides(dqp_discipline=discipline)

        def factory():
            return {n: UniformDelay(w) for n, w in waits.items()}

        return run_once(workload.catalog, workload.qep, "DSE", factory,
                        point_params, seed=1)

    def sweep():
        return {(label, discipline): measure(retrieval, discipline)
                for label, retrieval in SCENARIOS
                for discipline in ("priority", "round-robin")}

    grid = run_measured(benchmark, sweep)
    print()
    rows = [[label, discipline, f"{r.response_time:.3f}",
             f"{r.stall_time:.3f}", str(r.context_switches)]
            for (label, discipline), r in grid.items()]
    print(format_table(
        ["scenario", "discipline", "response (s)", "stall (s)", "switches"],
        rows, title="DQP service discipline (DSE)"))

    # Same answers.
    assert len({r.result_tuples for r in grid.values()}) == 1
    # With a slow source, the paper's strict priority is at least as
    # good as round-robin.
    slow_priority = grid[("F slowed to 8s", "priority")]
    slow_rr = grid[("F slowed to 8s", "round-robin")]
    assert slow_priority.response_time <= slow_rr.response_time * 1.02
