"""Section 5.1.1 — "Other queries, differing by their complexity, size
and shape, were tested in the same manner … the results presented … are
representative of the general behavior of the query engine."

This benchmark generates random join queries (the [14]-style generator),
optimizes each with the DP optimizer, slows one randomly chosen relation,
and measures SEQ vs DSE — verifying the paper's representativeness claim
across shapes and sizes rather than on the single Figure 5 plan.
"""

import numpy as np
from conftest import run_measured

from repro import CostModel, DynamicProgrammingOptimizer, QueryGenerator
from repro.experiments import format_table
from repro.experiments.runner import run_once
from repro.plan import build_qep
from repro.wrappers import UniformDelay

NUM_WORKLOADS = 8
SLOWDOWN_FACTOR = 10  # the slowed relation's w = 10 x w_min


def test_generalization(benchmark, params):
    def sweep():
        rows = []
        for seed in range(NUM_WORKLOADS):
            rng = np.random.default_rng(1000 + seed)
            gen = QueryGenerator(rng,
                                 min_cardinality=20_000,
                                 max_cardinality=60_000)
            num_relations = int(rng.integers(3, 8))
            shape = ["chain", "star", "tree"][seed % 3]
            workload = gen.generate(num_relations, shape=shape)
            tree = DynamicProgrammingOptimizer(
                CostModel(workload.catalog)).optimize(workload.query)
            qep = build_qep(workload.catalog, tree)
            slowed = workload.relation_names[
                int(rng.integers(0, num_relations))]

            def factory(slowed=slowed, workload=workload):
                waits = {name: params.w_min
                         for name in workload.relation_names}
                waits[slowed] = SLOWDOWN_FACTOR * params.w_min
                return {name: UniformDelay(w) for name, w in waits.items()}

            seq = run_once(workload.catalog, qep, "SEQ", factory, params,
                           seed=seed)
            dse = run_once(workload.catalog, qep, "DSE", factory, params,
                           seed=seed)
            rows.append({
                "seed": seed,
                "shape": shape,
                "relations": num_relations,
                "slowed": slowed,
                "seq": seq,
                "dse": dse,
            })
        return rows

    rows = run_measured(benchmark, sweep)
    print()
    table = []
    gains = []
    for row in rows:
        gain = 1 - row["dse"].response_time / row["seq"].response_time
        gains.append(gain)
        table.append([str(row["seed"]), row["shape"],
                      str(row["relations"]), row["slowed"],
                      f"{row['seq'].response_time:.3f}",
                      f"{row['dse'].response_time:.3f}",
                      f"{gain * 100:.1f}"])
    print(format_table(
        ["seed", "shape", "relations", "slowed", "SEQ (s)", "DSE (s)",
         "gain %"],
        table, title=f"Random workloads, one relation {SLOWDOWN_FACTOR}x slow"))

    # Correctness on every workload.
    for row in rows:
        assert row["seq"].result_tuples == row["dse"].result_tuples, row

    # Representativeness: DSE never loses meaningfully and wins overall.
    # (Gains vary with where the random slowdown lands: a slow relation
    # that SEQ consumes first anyway leaves little to reclaim.)
    assert all(gain > -0.05 for gain in gains)
    assert sum(1 for gain in gains if gain > 0.15) >= 2
    assert float(np.mean(gains)) > 0.05
