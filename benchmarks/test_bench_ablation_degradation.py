"""Ablation — what does PC degradation itself contribute?

Compares SEQ, DSE-ND (concurrent scheduling of C-schedulable PCs, no
materialization — the intermediate design of Section 2.3) and full DSE.

Expected shape: concurrency alone already beats SEQ; degradation adds a
further large step precisely when a *blocked* chain's source is slow
("this method will not apply if delivery problems appear with W_E" —
only materialization can overlap those).
"""

from conftest import run_measured

from repro.experiments import format_table, slowdown_waits
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

STRATEGIES = ["SEQ", "DSE-ND", "DSE"]


def test_ablation_degradation(benchmark, workload, params):
    def measure(slowed, retrieval):
        waits = slowdown_waits(workload, slowed, retrieval, params)

        def factory():
            return {name: UniformDelay(w) for name, w in waits.items()}

        return {strategy: run_once(workload.catalog, workload.qep, strategy,
                                   factory, params, seed=1)
                for strategy in STRATEGIES}

    def sweep():
        return {
            "none (w_min)": measure("A", 0.0),
            "A slowed to 8s": measure("A", 8.0),
            "F slowed to 8s": measure("F", 8.0),
        }

    table = run_measured(benchmark, sweep)
    rows = []
    for scenario, measured in table.items():
        rows.append([scenario]
                    + [f"{measured[s].response_time:.3f}" for s in STRATEGIES]
                    + [str(measured["DSE"].degradations)])
    print()
    print(format_table(["scenario"] + [f"{s} (s)" for s in STRATEGIES]
                       + ["DSE degradations"],
                       rows, title="Contribution of PC degradation"))

    for scenario, measured in table.items():
        seq = measured["SEQ"].response_time
        nd = measured["DSE-ND"].response_time
        dse = measured["DSE"].response_time
        # Concurrency alone already helps...
        assert nd < seq, scenario
        # ...and full DSE is at least as good everywhere.
        assert dse <= nd * 1.02, scenario
        assert measured["DSE-ND"].degradations == 0
        assert measured["DSE-ND"].tuples_spilled == 0

    # Degradation's step matters most when a *blocked* slow chain exists:
    # F is blocked by pA/pB, so DSE-ND cannot touch its delay.
    f_slow = table["F slowed to 8s"]
    assert (f_slow["DSE"].response_time
            < 0.9 * f_slow["DSE-ND"].response_time)
