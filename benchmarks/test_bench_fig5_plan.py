"""Figure 5 — the experiment QEP.

Prints the reconstructed plan, its pipeline chains, blocking dependencies
and annotations, and checks every structural constraint the paper states
about it (Sections 5.1.1 and 5.2).
"""

from conftest import run_measured

from repro.experiments import figure5_workload, format_table
from repro.plan import ancestor_closure, validate_qep


def test_fig5_plan(benchmark):
    workload = run_measured(benchmark, figure5_workload)
    qep = workload.qep
    validate_qep(qep)

    print()
    print("Figure 5 QEP (reconstruction):")
    print(qep.describe())
    print()
    rows = []
    closure = ancestor_closure(qep)
    for chain in qep.chains:
        rows.append([
            chain.name,
            f"{chain.estimated_input_cardinality:,.0f}",
            f"{chain.estimated_output_cardinality:,.0f}",
            f"{chain.memory_requirement() // 1024} KB",
            ",".join(sorted(closure[chain.name])) or "-",
        ])
    print(format_table(
        ["PC", "input tuples", "output tuples", "mem(op) sum", "ancestors*"],
        rows, title="Pipeline chains"))

    # Paper constraints (Section 5.1.1 / 5.2):
    cards = {r.name: r.cardinality for r in workload.catalog}
    assert sum(1 for c in cards.values() if 100_000 <= c <= 200_000) == 4
    assert sum(1 for c in cards.values() if 10_000 <= c <= 20_000) == 2
    assert closure["pB"] >= {"pA"}
    assert closure["pF"] >= {"pA", "pB"}
    assert all("pC" not in anc for name, anc in closure.items())
    # pB and pF represent roughly half the query's source tuples.
    blocked = cards["B"] + cards["F"]
    total = sum(cards.values())
    assert 0.4 <= blocked / total <= 0.7
