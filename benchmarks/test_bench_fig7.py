"""Figure 7 — one slowed-down relation (F).

Same sweep as Figure 6 but slowing F.  Expected shape: as Figure 6, plus
the paper's observation that "DSE achieves better performance improvement
with F than with A, specifically when the slowdown is high" — F does not
gate half the query the way A does, so DSE can hide almost all of its
delay (its curve stays near the LWB).
"""

from conftest import run_measured

from repro.experiments import format_table, run_slowdown_experiment
from repro.experiments.slowdown import STRATEGIES

RETRIEVAL_TIMES = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


def test_fig7_slowing_F(benchmark, workload, params):
    points = run_measured(
        benchmark,
        lambda: run_slowdown_experiment(workload, "F", RETRIEVAL_TIMES,
                                        params, repetitions=1))
    print()
    print(format_table(
        ["retrieval(F) s"] + STRATEGIES + ["LWB"],
        [p.row() for p in points],
        title="Figure 7: one slowed-down relation (F) — response time (s)"))

    seq = [p.response_times["SEQ"] for p in points]
    dse = [p.response_times["DSE"] for p in points]

    assert all(d < s for d, s in zip(dse, seq))
    # At the highest slowdown DSE hides nearly all of F's delay: it stays
    # within 25% of the analytic lower bound.
    assert dse[-1] <= points[-1].lwb * 1.25

    # Cross-figure comparison (the paper's headline for Section 5.2):
    # relative DSE gain at max slowdown is larger for F than for A.
    a_points = run_slowdown_experiment(workload, "A", [RETRIEVAL_TIMES[-1]],
                                       params, repetitions=1)
    gain_a = 1 - (a_points[0].response_times["DSE"]
                  / a_points[0].response_times["SEQ"])
    gain_f = 1 - dse[-1] / seq[-1]
    print(f"\nDSE gain at 8 s slowdown: A={gain_a:.1%}  F={gain_f:.1%}")
    assert gain_f > gain_a
