"""Extension — QEP-level re-optimization on misestimated cardinalities.

The QEP arrives with an injected estimation error: J1's output (the
build of J2, and transitively of J3) is several times larger than the
optimizer believed — the classic scenario of [9]/Section 3.1.  When the
first blocking edge completes, the DQO observes the true size; with
``enable_reoptimization`` it swaps the build/probe sides of the pending
joins whose corrected orientation is wrong.

Expected shape: detection fires in both configurations; acting on it
shrinks peak memory substantially (the big side streams instead of being
hashed) without changing the result; response time does not regress.
"""

from conftest import run_measured

from repro.core.engine import QueryEngine
from repro.core.strategies import make_policy
from repro.experiments import figure5_workload, format_table
from repro.plan import build_qep
from repro.wrappers import UniformDelay

ERROR_FACTORS = [1.0, 2.0, 4.0]


def test_ablation_reopt(benchmark, params):
    workload = figure5_workload(scale=0.5)

    def measure(factor, reopt):
        qep = build_qep(workload.catalog, workload.tree,
                        actual_output_factors={"J1": factor})
        point_params = params.with_overrides(enable_reoptimization=reopt)
        delays = {name: UniformDelay(params.w_min)
                  for name in workload.relation_names}
        engine = QueryEngine(workload.catalog, qep, make_policy("SEQ"),
                             delays, params=point_params, seed=1)
        return engine.run()

    def sweep():
        return {(factor, reopt): measure(factor, reopt)
                for factor in ERROR_FACTORS
                for reopt in (False, True)}

    grid = run_measured(benchmark, sweep)
    print()
    rows = []
    for (factor, reopt), result in grid.items():
        rows.append([f"{factor:g}x", "on" if reopt else "off",
                     f"{result.response_time:.3f}",
                     f"{result.memory_peak_bytes / 1e6:.2f}",
                     ",".join(result.reopt_swaps) or "-",
                     ",".join(result.reopt_opportunities) or "-"])
    print(format_table(
        ["J1 error", "reopt", "response (s)", "peak (MB)", "swaps",
         "detected"],
        rows, title="Acting on observed misestimates (SEQ, 50% scale)"))

    for factor in ERROR_FACTORS[1:]:
        off = grid[(factor, False)]
        on = grid[(factor, True)]
        assert off.reopt_opportunities and on.reopt_opportunities
        assert off.reopt_swaps == [] and on.reopt_swaps
        assert on.result_tuples == off.result_tuples
        assert on.memory_peak_bytes < off.memory_peak_bytes
        assert on.response_time <= off.response_time * 1.05
    # No error, no action.
    assert grid[(1.0, True)].reopt_swaps == []
