"""Ablation — number of local disks (Table 1's unused-looking knob).

MA funnels every relation through the local disk(s); with one spindle
its two phases serialize all that I/O.  A second disk stripes the temp
relations and relieves the bottleneck.  DSE spills far less, so extra
spindles matter less — evidence that degradation is *selective* I/O,
not wholesale materialization.

Expected shape: MA improves noticeably from 1 -> 2 disks; DSE changes
little; results stay exact.
"""

from conftest import run_measured

from repro.experiments import format_table
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

DISK_COUNTS = [1, 2, 4]


def test_ablation_disks(benchmark, workload, params):
    def factory():
        return {name: UniformDelay(params.w_min)
                for name in workload.relation_names}

    def sweep():
        grid = {}
        for disks in DISK_COUNTS:
            point_params = params.with_overrides(num_local_disks=disks)
            for strategy in ["MA", "DSE"]:
                grid[(strategy, disks)] = run_once(
                    workload.catalog, workload.qep, strategy, factory,
                    point_params, seed=1)
        return grid

    grid = run_measured(benchmark, sweep)
    print()
    rows = []
    for (strategy, disks), result in grid.items():
        rows.append([strategy, str(disks), f"{result.response_time:.3f}",
                     f"{result.disk_busy_time:.2f}",
                     str(result.disk_seeks)])
    print(format_table(
        ["strategy", "disks", "response (s)", "disk busy (s)", "seeks"],
        rows, title="Striping temp relations across local disks"))

    # MA benefits from striping; results stay exact everywhere.
    assert (grid[("MA", 2)].response_time
            <= grid[("MA", 1)].response_time * 1.001)
    assert len({r.result_tuples for r in grid.values()}) == 1
    # DSE is less disk-bound than MA at every disk count.
    for disks in DISK_COUNTS:
        assert (grid[("DSE", disks)].response_time
                < grid[("MA", disks)].response_time)
