"""Figure 6 — one slowed-down relation (A).

X axis: total time to retrieve A entirely; curves: SEQ, MA, DSE (+ LWB).

Expected shape (Section 5.2): SEQ grows linearly with the slowdown; MA is
roughly constant (it cannot overlap a single relation's delay with
anything) and is the worst at small slowdowns; DSE is below SEQ
everywhere, with a substantial gain even at w = w_min; LWB lower-bounds
everything.
"""

from conftest import run_measured

from repro.experiments import format_table, run_slowdown_experiment
from repro.experiments.slowdown import STRATEGIES

RETRIEVAL_TIMES = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


def test_fig6_slowing_A(benchmark, workload, params):
    points = run_measured(
        benchmark,
        lambda: run_slowdown_experiment(workload, "A", RETRIEVAL_TIMES,
                                        params, repetitions=1))
    print()
    print(format_table(
        ["retrieval(A) s"] + STRATEGIES + ["LWB"],
        [p.row() for p in points],
        title="Figure 6: one slowed-down relation (A) — response time (s)"))

    seq = [p.response_times["SEQ"] for p in points]
    ma = [p.response_times["MA"] for p in points]
    dse = [p.response_times["DSE"] for p in points]

    # SEQ increases roughly linearly with the slowdown.
    assert all(b > a for a, b in zip(seq, seq[1:]))
    slope = (seq[-1] - seq[0]) / (RETRIEVAL_TIMES[-1] - RETRIEVAL_TIMES[0])
    assert 0.7 <= slope <= 1.3  # ~1 second per second of added delay

    # MA is roughly constant: bounded variation across the sweep.
    assert max(ma) - min(ma) < 0.35 * (max(seq) - min(seq))

    # DSE beats SEQ everywhere, by a large margin at high slowdown.
    assert all(d < s for d, s in zip(dse, seq))
    assert dse[-1] < 0.75 * seq[-1]

    # Visible DSE gain even at w = w_min (paper: "around 40%!").
    assert dse[0] < 0.85 * seq[0]

    # LWB is a true lower bound (0.5% slack: it bounds *expected* delays).
    for p in points:
        assert p.lwb <= min(p.response_times.values()) * 1.005
