"""Sensitivity — DSE's gain vs mediator CPU speed.

Figure 8 varies the *network* (w_min); this sweep varies the other side
of the balance: the mediator CPU.  The per-tuple processing cost scales
as 1/MIPS, so slow CPUs make every chain CPU-bound (nothing to overlap)
and fast CPUs push the engine into the retrieval-bound regime where
scheduling wins.

Expected shape: gain ≈ 0 on a slow CPU, rising monotonically-ish with
MIPS toward the structural overlap limit — the mirror image of Figure 8.
"""

from conftest import run_measured

from repro.experiments import format_table
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

MIPS_VALUES = [25.0, 50.0, 100.0, 200.0, 400.0]


def test_sensitivity_cpu_speed(benchmark, workload, params):
    def factory():
        return {name: UniformDelay(params.w_min)
                for name in workload.relation_names}

    def sweep():
        grid = {}
        for mips in MIPS_VALUES:
            point_params = params.with_overrides(cpu_mips=mips)
            for strategy in ["SEQ", "DSE"]:
                grid[(mips, strategy)] = run_once(
                    workload.catalog, workload.qep, strategy, factory,
                    point_params, seed=1)
        return grid

    grid = run_measured(benchmark, sweep)
    print()
    rows = []
    gains = {}
    for mips in MIPS_VALUES:
        seq = grid[(mips, "SEQ")]
        dse = grid[(mips, "DSE")]
        gains[mips] = 1 - dse.response_time / seq.response_time
        rows.append([f"{mips:g}", f"{seq.response_time:.3f}",
                     f"{dse.response_time:.3f}",
                     f"{gains[mips] * 100:.1f}",
                     f"{dse.cpu_utilization:.0%}"])
    print(format_table(
        ["CPU (MIPS)", "SEQ (s)", "DSE (s)", "gain %", "DSE CPU util"],
        rows, title="DSE gain vs mediator CPU speed (w_min network)"))

    # Slow CPU: the engine is compute-bound, gain evaporates.
    assert gains[25.0] < 0.1
    # The paper's 100 MIPS: clear gain.
    assert gains[100.0] > 0.2
    # Fast CPU: retrieval-bound, the gain approaches the overlap limit.
    assert gains[400.0] > gains[100.0]
    cards = [r.cardinality for r in workload.catalog]
    assert gains[400.0] <= 1 - max(cards) / sum(cards) + 0.05
    # Same answers everywhere.
    assert len({r.result_tuples for r in grid.values()}) == 1
