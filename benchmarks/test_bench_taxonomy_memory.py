"""Extension — adaptation levels under memory pressure.

Under a tight memory budget, both adaptive approaches degrade into
disk-backed variants: DSE splits chains ([4]) and spills build inputs;
the XJoin-style DPHJ (DPHJ-X) spills table portions and runs a cleanup
phase.  This benchmark sweeps the budget for both.

Expected shape: both stay exact at every feasible budget; both get
slower as memory shrinks; DPHJ-X keeps needing roughly the size of *all*
tables to stay disk-free, while DSE needs only the co-resident subset —
the structural memory advantage of scheduling-level adaptation.
"""

import pytest
from conftest import run_measured

from repro.core.symmetric import SymmetricHashJoinEngine, SymmetricPlan
from repro.experiments import figure5_workload, format_table
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

# Full DPHJ tables at 50% scale need ~17.8 MB; DSE's co-resident working
# set is ~5.8 MB.  12 MB sits between the two regimes.
BUDGETS_MB = [64.0, 12.0, 8.0]


def test_taxonomy_memory_pressure(benchmark, params):
    workload = figure5_workload(scale=0.5)

    def factory():
        return {name: UniformDelay(params.w_min)
                for name in workload.relation_names}

    def measure(budget_mb):
        point_params = params.with_overrides(
            query_memory_bytes=int(budget_mb * 1024 * 1024))
        dse = run_once(workload.catalog, workload.qep, "DSE", factory,
                       point_params, seed=1)
        dphj = SymmetricHashJoinEngine(
            workload.catalog, workload.tree, factory(), params=point_params,
            seed=1, allow_spill=True).run()
        return dse, dphj

    def sweep():
        return {budget: measure(budget) for budget in BUDGETS_MB}

    grid = run_measured(benchmark, sweep)
    print()
    rows = []
    for budget, (dse, dphj) in grid.items():
        rows.append([f"{budget:g}", "DSE", f"{dse.response_time:.3f}",
                     f"{dse.memory_peak_bytes / 1e6:.1f}",
                     str(dse.tuples_spilled)])
        rows.append([f"{budget:g}", "DPHJ-X", f"{dphj.response_time:.3f}",
                     f"{dphj.memory_peak_bytes / 1e6:.1f}",
                     str(dphj.tuples_spilled)])
    print(format_table(
        ["budget (MB)", "strategy", "response (s)", "peak (MB)", "spilled"],
        rows, title="Adaptation levels under memory pressure (50% scale)"))

    full_tables = SymmetricPlan(workload.catalog,
                                workload.tree).total_table_bytes() / 1e6
    # Both stay exact everywhere.
    dse_counts = {dse.result_tuples for dse, _ in grid.values()}
    dphj_counts = {dphj.result_tuples for _, dphj in grid.values()}
    assert len(dse_counts) == 1
    assert max(dphj_counts) - min(dphj_counts) <= 10
    # At the middle budget (between DSE's working set and DPHJ's full
    # tables), DPHJ-X must spill while DSE is unaffected and faster.
    middle = grid[BUDGETS_MB[1]]
    roomy = grid[BUDGETS_MB[0]]
    assert BUDGETS_MB[1] < full_tables
    assert middle[1].tuples_spilled > 0
    assert roomy[1].tuples_spilled == 0
    assert middle[0].response_time == pytest.approx(
        roomy[0].response_time, rel=0.05)       # DSE indifferent
    assert middle[0].response_time < middle[1].response_time
    # Budgets hold for both.
    for budget, (dse, dphj) in grid.items():
        assert dse.memory_peak_bytes <= budget * 1024 * 1024
        assert dphj.memory_peak_bytes <= budget * 1024 * 1024
