"""Extension — time to first result tuple across strategies.

Blocking hash-join plans cannot emit a result before the root chain's
last build completes; symmetric operators produce matches the moment
both sides have overlapping data.  This is the metric Tukwila's
operator-level adaptation ([8]) targets, and the classic counterpoint to
the paper's response-time focus: DSE wins total response time at
moderate memory, DPHJ wins time-to-first-tuple by orders of magnitude.
"""

from conftest import run_measured

from repro.core.symmetric import SymmetricHashJoinEngine
from repro.experiments import format_table
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay


def test_time_to_first_tuple(benchmark, workload, params):
    def factory():
        return {name: UniformDelay(params.w_min)
                for name in workload.relation_names}

    def sweep():
        measured = {}
        for strategy in ["SEQ", "MA", "DSE"]:
            measured[strategy] = run_once(workload.catalog, workload.qep,
                                          strategy, factory, params, seed=1)
        measured["DPHJ"] = SymmetricHashJoinEngine(
            workload.catalog, workload.tree, factory(), params=params,
            seed=1).run()
        return measured

    measured = run_measured(benchmark, sweep)
    print()
    rows = []
    for strategy, result in measured.items():
        ttft = result.time_to_first_tuple
        rows.append([strategy,
                     f"{ttft:.3f}" if ttft is not None else "-",
                     f"{result.response_time:.3f}"])
    print(format_table(
        ["strategy", "first tuple (s)", "last tuple (s)"],
        rows, title="Time to first result tuple (all sources at w_min)"))

    # Blocking plans: the first tuple needs every build on the root's
    # path — late in the run for all three strategies.
    for strategy in ["SEQ", "MA", "DSE"]:
        result = measured[strategy]
        assert result.time_to_first_tuple > 0.5 * result.response_time, strategy

    # Symmetric operators produce early: whole result tuples appear once
    # enough partial matches have accumulated through all five joins.
    dphj = measured["DPHJ"]
    assert dphj.time_to_first_tuple < 0.2 * dphj.response_time
    assert (dphj.time_to_first_tuple
            < 0.2 * measured["DSE"].time_to_first_tuple)
