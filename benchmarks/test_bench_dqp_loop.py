"""DQP batch-loop hot path — ``SchedulingPlan.live()`` and batches/sec.

The per-batch loop calls ``live()`` on every iteration to pick the next
fragment.  It used to rebuild a filtered list each time (O(fragments)
allocations per batch); now it keeps a cached list invalidated by the
runtime's ``done_revision`` counter, so steady-state scheduling is
allocation-free.  Two checks here:

* the cache contract — repeated ``live()`` calls return the *same* list
  object until a fragment finishes, and see the change immediately after;
* the end-to-end rate — batches/sec through a real DSE execution, with a
  floor so an accidental O(n) regression in the loop shows up in CI;
* the flight-recorder budget — the per-batch ``if self._flight is not
  None`` guard must keep the disabled path within 2% of the recording
  path (it should in fact be faster; the budget absorbs timer noise).
"""

from __future__ import annotations

import time

from conftest import run_measured

from repro.config import SimulationParameters
from repro.core.dqp import SchedulingPlan
from repro.core.fragments import FragmentStatus
from repro.experiments.runner import run_once
from repro.experiments.slowdown import slowdown_waits
from repro.experiments.workloads import figure5_workload
from repro.wrappers.delays import UniformDelay

LIVE_CALLS = 50_000
#: floor for the end-to-end scheduling rate (batches/s at 20% scale).
MIN_BATCHES_PER_SEC = 2_000
#: relative budget for the flight-disabled path vs the recording path.
FLIGHT_DISABLED_BUDGET = 0.02


class _Runtime:
    def __init__(self) -> None:
        self.done_revision = 0


class _Fragment:
    """The two attributes ``live()`` reads, nothing else."""

    def __init__(self, runtime: _Runtime) -> None:
        self.runtime = runtime
        self.status = FragmentStatus.PENDING


def test_live_reuses_list_until_a_fragment_finishes():
    runtime = _Runtime()
    fragments = [_Fragment(runtime) for _ in range(8)]
    plan = SchedulingPlan(fragments=fragments)  # type: ignore[arg-type]

    first = plan.live()
    assert first == fragments
    for _ in range(LIVE_CALLS):
        assert plan.live() is first  # cached: no per-batch allocation

    # A fragment finishing bumps the revision; live() must see it at once.
    fragments[0].status = FragmentStatus.DONE
    runtime.done_revision += 1
    after = plan.live()
    assert after is not first
    assert after == fragments[1:]
    assert plan.live() is after


def test_dqp_batch_rate(benchmark):
    workload = figure5_workload(scale=0.2)
    params = SimulationParameters()
    waits = slowdown_waits(workload, "A", 1.0, params)

    def factory():
        return {name: UniformDelay(wait) for name, wait in waits.items()}

    import time

    def drive():
        start = time.perf_counter()
        result = run_once(workload.catalog, workload.qep, "DSE", factory,
                          params, seed=1)
        return result.batches_processed / (time.perf_counter() - start)

    rate = run_measured(benchmark, lambda: max(drive() for _ in range(3)))
    print(f"\nDQP batch loop: {rate:12,.0f} batches/s")
    assert rate > MIN_BATCHES_PER_SEC, (
        f"batch loop collapsed: {rate:,.0f} batches/s")


def _drive_with_flight(workload, params, waits, seed: int = 1) -> float:
    """One DSE run with a flight recorder armed; returns batches/sec.

    Mirrors ``QueryEngine.run`` but attaches the recorder to the world's
    telemetry before the DQP caches its ``telemetry.flight`` handle, so
    the per-batch recording branch is actually taken.
    """
    from repro.core.dqo import DynamicQEPOptimizer
    from repro.core.dqp import DynamicQueryProcessor
    from repro.core.dqs import DynamicQueryScheduler
    from repro.core.runtime import QueryRuntime, World
    from repro.core.strategies import make_policy
    from repro.observability import FlightRecorder
    from repro.wrappers.source import Wrapper

    world = World(params, seed=seed)
    world.telemetry.flight = FlightRecorder(capacity=512)
    for source in workload.qep.source_relations():
        Wrapper(world.sim, workload.catalog.relation(source),
                UniformDelay(waits[source]), world.cm,
                world.rng(f"wrapper:{source}"), params).start()
    runtime = QueryRuntime(world, workload.qep)
    scheduler = DynamicQueryScheduler(runtime, make_policy("DSE"))
    processor = DynamicQueryProcessor(runtime)
    optimizer = DynamicQEPOptimizer(runtime, scheduler, processor)
    main = world.sim.process(optimizer.run(), name="engine")
    main.defused = True
    start = time.perf_counter()
    world.sim.run()
    elapsed = time.perf_counter() - start
    if main.failure is not None:
        raise main.failure
    assert len(world.telemetry.flight) > 0, "recorder saw no batches"
    return processor.batches_processed / elapsed


def test_flight_recorder_disabled_path_overhead(benchmark):
    """A run without a recorder must not be slower than one recording.

    The DQP pays one attribute check per batch when ``telemetry.flight``
    is None; this pins that the check stays within the 2% budget by
    comparing against the strictly-more-expensive recording path.
    """
    workload = figure5_workload(scale=0.2)
    params = SimulationParameters()
    waits = slowdown_waits(workload, "A", 1.0, params)

    def factory():
        return {name: UniformDelay(wait) for name, wait in waits.items()}

    def disabled_rate() -> float:
        start = time.perf_counter()
        result = run_once(workload.catalog, workload.qep, "DSE", factory,
                          params, seed=1)
        return result.batches_processed / (time.perf_counter() - start)

    def measure() -> tuple[float, float]:
        disabled = max(disabled_rate() for _ in range(3))
        recording = max(_drive_with_flight(workload, params, waits)
                        for _ in range(3))
        return disabled, recording

    disabled, recording = run_measured(benchmark, measure)
    print(f"\nflight disabled : {disabled:12,.0f} batches/s")
    print(f"flight recording: {recording:12,.0f} batches/s")
    assert disabled > MIN_BATCHES_PER_SEC
    assert disabled >= recording * (1.0 - FLIGHT_DISABLED_BUDGET), (
        f"disabled-path overhead above {FLIGHT_DISABLED_BUDGET:.0%}: "
        f"{disabled:,.0f} vs {recording:,.0f} batches/s recording")
