"""Ablation — the benefit materialization threshold (bmt).

The paper fixes bmt = 1 for its experiments (Section 5.1.3) and explains
the trade-off in Section 4.4: a low threshold degrades eagerly (more
I/O), a high one never materializes (the engine stalls on blocked slow
sources).  This sweep measures DSE with a slowed F across bmt values.

Expected shape: a permissive threshold (bmt <= 1) hides F's delay; a
prohibitive one (no degradation ever) degenerates toward SEQ-like
stalling on the slow source.
"""

from conftest import run_measured

from repro.experiments import format_table, slowdown_waits
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

BMT_VALUES = [0.1, 0.5, 1.0, 2.0, 10.0, 1e9]
RETRIEVAL = 3.0  # seconds to retrieve F entirely (at 20% scale)


def test_ablation_bmt(benchmark, small_workload, params):
    waits = slowdown_waits(small_workload, "F", RETRIEVAL, params)

    def factory():
        return {name: UniformDelay(wait) for name, wait in waits.items()}

    def sweep():
        rows = {}
        for bmt in BMT_VALUES:
            point_params = params.with_overrides(bmt=bmt)
            rows[bmt] = run_once(small_workload.catalog, small_workload.qep,
                                 "DSE", factory, point_params, seed=1)
        return rows

    results = run_measured(benchmark, sweep)
    print()
    print(format_table(
        ["bmt", "response (s)", "degradations", "tuples spilled", "stall (s)"],
        [[f"{bmt:g}", f"{r.response_time:.3f}", str(r.degradations),
          str(r.tuples_spilled), f"{r.stall_time:.3f}"]
         for bmt, r in results.items()],
        title=f"DSE vs bmt (F slowed to {RETRIEVAL:.0f}s retrieval)"))

    never = results[1e9]
    paper = results[1.0]
    assert never.degradations == 0
    assert paper.degradations >= 1
    # Degradation pays off on a slow source.
    assert paper.response_time < never.response_time
    # All thresholds compute the same result.
    assert len({r.result_tuples for r in results.values()}) == 1
