"""Ablation — memory limitation (Section 4.2).

Sweeps the query memory budget from roomy down to barely feasible.  The
DQS discovers non-M-schedulable chains and the DQO splits them with
materializations ([4]'s technique).

Expected shape: smaller budgets force more splits and more spilled
tuples, response time grows, peak residency never exceeds the budget,
and the result stays exact.  Below the largest single hash table the
query is correctly refused.
"""

import pytest
from conftest import run_measured

from repro.common.errors import MemoryOverflowError
from repro.experiments import format_table
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

# At 20% scale SEQ's peak residency is ~1.76 MB (J2 + the final table);
# the floor is ~1.44 MB (the two tables the root chain probes together).
BUDGETS_MB = [64.0, 1.7, 1.55, 1.45]


def test_ablation_memory(benchmark, small_workload, params):
    def factory():
        return {name: UniformDelay(params.w_min)
                for name in small_workload.relation_names}

    def sweep():
        results = {}
        for budget_mb in BUDGETS_MB:
            point_params = params.with_overrides(
                query_memory_bytes=int(budget_mb * 1024 * 1024))
            results[budget_mb] = run_once(
                small_workload.catalog, small_workload.qep, "SEQ",
                factory, point_params, seed=4)
        return results

    results = run_measured(benchmark, sweep)
    print()
    rows = []
    for budget_mb, result in results.items():
        rows.append([f"{budget_mb:g}", f"{result.response_time:.3f}",
                     str(result.memory_splits),
                     f"{result.memory_peak_bytes / 1024 / 1024:.2f}",
                     str(result.tuples_spilled)])
    print(format_table(
        ["budget (MB)", "response (s)", "splits", "peak (MB)", "spilled"],
        rows, title="SEQ under shrinking memory budgets (20% scale)"))

    roomy = results[BUDGETS_MB[0]]
    tightest = results[BUDGETS_MB[-1]]
    assert roomy.memory_splits == 0
    assert tightest.memory_splits >= 1
    assert tightest.response_time >= roomy.response_time
    for budget_mb, result in results.items():
        assert result.memory_peak_bytes <= budget_mb * 1024 * 1024
        assert result.result_tuples == roomy.result_tuples

    # Below the largest single table the query cannot run at all.
    impossible = params.with_overrides(query_memory_bytes=512 * 1024)
    with pytest.raises(MemoryOverflowError):
        run_once(small_workload.catalog, small_workload.qep, "SEQ",
                 factory, impossible, seed=4)
