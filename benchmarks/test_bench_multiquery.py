"""Extension — multi-query execution (the paper's Section 6 future work).

Four copies of the Figure 5 query (at 20% scale) run concurrently on one
mediator, all-SEQ vs all-DSE, at two network speeds.

Expected shape (the tradeoff the paper predicts): with *fast* sources
the mediator is already CPU-saturated by query concurrency — DSE's extra
materialization work buys nothing and costs throughput; with *slow*
sources there is idle time to reclaim and DSE wins on mean response time
despite doing more total work.
"""

from conftest import run_measured

from repro.experiments import format_table, run_multiquery_experiment

FAST = 20e-6
SLOW = 100e-6


def test_multiquery_throughput(benchmark, small_workload, params):
    points = run_measured(
        benchmark,
        lambda: run_multiquery_experiment(
            small_workload, ["SEQ", "DSE"], [FAST, SLOW], params,
            num_queries=4, inter_arrival=0.0, seed=1))

    print()
    print(format_table(
        ["strategy", "w (µs)", "pool", "mean resp (s)", "makespan (s)",
         "queries/s", "CPU", "queued", "wait (s)"],
        [p.row() for p in points],
        title="4 concurrent queries: throughput vs response time"))

    by_key = {(p.strategy, p.wait): p for p in points}

    # Slow sources: DSE reclaims idle time even under multi-query load.
    assert (by_key[("DSE", SLOW)].mean_response
            < by_key[("SEQ", SLOW)].mean_response)

    # Fast sources saturate the CPU: SEQ's lower total work wins —
    # exactly the response-time/total-work tradeoff of Section 6.
    assert (by_key[("SEQ", FAST)].makespan
            <= by_key[("DSE", FAST)].makespan * 1.05)

    # Everybody computes the right answer.
    expected = round(50_000 * 0.2)
    for point in points:
        for outcome in point.result.outcomes:
            assert outcome.result_tuples == expected
