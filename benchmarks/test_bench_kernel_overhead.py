"""Kernel dispatch overhead — events/sec through the execution kernel.

The ``repro.exec`` refactor put a :class:`KernelBase` layer between the
event machinery and the backends.  This micro-benchmark pins down the
cost of that indirection: it drives the same timeout-chain workload
through the real :class:`Simulator` and through an inline frozen copy of
the pre-refactor hot path (heap push/pop plus ``SimEvent`` callbacks,
no base class, no cancellation check), and asserts the refactored kernel
keeps at least ~90% of the inline loop's event rate.
"""

from __future__ import annotations

import heapq
import time

from conftest import run_measured

from repro.exec.core import Process, SimEvent, Timeout
from repro.sim.engine import Simulator

PROCESSES = 20
STEPS = 2_000
BEST_OF = 5
#: the ISSUE budget: at most ~10% dispatch regression vs the inline loop.
MAX_REGRESSION = 0.10


class InlineLoop:
    """Frozen copy of the pre-refactor Simulator hot path.

    Duck-types the kernel surface :class:`SimEvent`/:class:`Process`
    need (``_schedule``, ``_note_failed_process``) with everything
    inlined in one class and no cancelled-event handling — the cheapest
    correct dispatcher for this workload, used as the 100% mark.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, int, SimEvent]] = []
        self._sequence = 0
        self.processed_events = 0
        self._failed = []

    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self.now + delay, priority, self._sequence, event))

    def _note_failed_process(self, process) -> None:
        self._failed.append(process)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def process(self, generator) -> Process:
        return Process(self, generator)

    def run(self) -> None:
        heap = self._heap
        while heap:
            when, _priority, _seq, event = heapq.heappop(heap)
            self.now = when
            self.processed_events += 1
            event._run_callbacks()


def _ticker(kernel, steps: int):
    for _ in range(steps):
        yield kernel.timeout(1.0)


def _drive(make_kernel) -> float:
    """Run the workload once; returns events processed per second."""
    kernel = make_kernel()
    for _ in range(PROCESSES):
        kernel.process(_ticker(kernel, STEPS))
    start = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - start
    assert kernel.processed_events >= PROCESSES * STEPS
    return kernel.processed_events / elapsed


def _best_rate(make_kernel) -> float:
    return max(_drive(make_kernel) for _ in range(BEST_OF))


def test_kernel_dispatch_overhead(benchmark):
    inline_rate = _best_rate(InlineLoop)
    kernel_rate = run_measured(benchmark, lambda: _best_rate(Simulator))

    ratio = kernel_rate / inline_rate
    print()
    print(f"inline loop : {inline_rate:12,.0f} events/s")
    print(f"Simulator   : {kernel_rate:12,.0f} events/s  "
          f"({100 * ratio:.1f}% of inline)")

    # Sanity floor so a pathological slowdown cannot hide behind a slow
    # baseline measurement.
    assert kernel_rate > 50_000, f"kernel rate collapsed: {kernel_rate:,.0f}/s"
    assert ratio >= 1.0 - MAX_REGRESSION, (
        f"kernel dispatch regressed {100 * (1 - ratio):.1f}% vs the inline "
        f"loop (budget {100 * MAX_REGRESSION:.0f}%)")
