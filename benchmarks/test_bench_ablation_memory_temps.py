"""Ablation — materializing in memory vs on disk (Section 2.2).

"Such a materialization can occur in memory or on disk depending on the
available resources."  With ``allow_memory_temps``, DSE's partial
materializations go into query memory when the estimate fits, skipping
both directions of disk I/O.

Expected shape: with a roomy budget, memory temps eliminate DSE's disk
traffic and shave response time at a higher memory peak; with a tight
budget the temps fall back to disk and behaviour converges to the
disk-based configuration.
"""

from conftest import run_measured

from repro.experiments import format_table, slowdown_waits
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay


def test_ablation_memory_temps(benchmark, workload, params):
    waits = slowdown_waits(workload, "F", 8.0, params)

    def factory():
        return {n: UniformDelay(w) for n, w in waits.items()}

    def sweep():
        grid = {}
        for label, memory_temps, budget_mb in [
                ("disk temps", False, 256),
                ("memory temps, roomy", True, 256),
                ("memory temps, tight", True, 14),
        ]:
            point_params = params.with_overrides(
                allow_memory_temps=memory_temps,
                query_memory_bytes=budget_mb * 1024 * 1024)
            grid[label] = run_once(workload.catalog, workload.qep, "DSE",
                                   factory, point_params, seed=1)
        return grid

    grid = run_measured(benchmark, sweep)
    print()
    rows = [[label, f"{r.response_time:.3f}", f"{r.disk_busy_time:.2f}",
             f"{r.memory_peak_bytes / 1e6:.1f}", str(r.tuples_spilled)]
            for label, r in grid.items()]
    print(format_table(
        ["configuration", "response (s)", "disk busy (s)", "peak (MB)",
         "spilled"],
        rows, title="DSE materialization target (F slowed to 8 s)"))

    disk = grid["disk temps"]
    roomy = grid["memory temps, roomy"]
    tight = grid["memory temps, tight"]
    assert roomy.disk_busy_time < 0.2 * disk.disk_busy_time
    assert roomy.response_time <= disk.response_time * 1.02
    assert roomy.memory_peak_bytes > disk.memory_peak_bytes
    # Under pressure, temps fall back to disk and the budget holds.
    assert tight.disk_busy_time > 0
    assert tight.memory_peak_bytes <= 14 * 1024 * 1024
    # Everyone computes the same answer.
    assert disk.result_tuples == roomy.result_tuples == tight.result_tuples