"""Table 1 — simulation parameters.

Prints the paper's Table 1 from the live configuration object and checks
the values match the paper exactly.
"""

from conftest import run_measured

from repro.experiments import format_table

PAPER_TABLE1 = {
    "CPU Speed": "100 Mips",
    "Disk Latency - Seek Time - Transfer Rate": "17 ms - 5 ms - 6 MB/s",
    "I/O Cache Size": "8 pages",
    "Perform an I/O": "3000 Instr.",
    "Number of Local Disks": "1",
    "Tuple Size - Page Size": "40 bytes - 8 Kb",
    "Move a Tuple": "100 Inst.",
    "Search for Match in Hash Table": "100 Inst.",
    "Produce a Result Tuple": "50 Inst.",
    "Network Bandwidth": "100 Mbs",
    "Send/Receive a Message": "200000 Inst.",
}


def test_table1(benchmark, params):
    rows = run_measured(benchmark, params.table1_rows)
    print()
    print(format_table(["Parameter", "Value"], rows,
                       title="Table 1: Simulation parameters"))
    assert dict(rows) == PAPER_TABLE1
