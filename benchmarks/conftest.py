"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment sweep once (``benchmark.pedantic`` with a single
round — the sweep itself is the measured unit), prints the same
rows/series the paper reports, and asserts the qualitative shape that the
reproduction is expected to preserve (who wins, roughly by how much,
where crossovers fall).
"""

from __future__ import annotations

import pytest

from repro.config import SimulationParameters
from repro.experiments import figure5_workload


@pytest.fixture(scope="session")
def params() -> SimulationParameters:
    return SimulationParameters()


@pytest.fixture(scope="session")
def workload():
    """The full-size (paper-scale) Figure 5 workload."""
    return figure5_workload()


@pytest.fixture(scope="session")
def small_workload():
    """A 20%-scale workload for the ablation benchmarks."""
    return figure5_workload(scale=0.2)


def run_measured(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
