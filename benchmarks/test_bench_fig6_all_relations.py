"""Section 5.2 (text) — slowing down each input relation in turn.

"We perform this experiment slowing down successively each input relation
of the QEP to observe the influence of the position of the slowed-down
relation in the QEP."  One strong slowdown (8 s retrieval) per relation —
the regime where the paper contrasts A and F.

Expected shape: DSE beats SEQ for every position; relations that block
little of the plan (C, E, F, D) are hidden better than A (which gates
pB and pF, about half the query).
"""

from conftest import run_measured

from repro.experiments import format_table, run_slowdown_experiment

RETRIEVAL = 8.0


def test_slowing_each_relation(benchmark, workload, params):
    def sweep():
        results = {}
        for name in workload.relation_names:
            point = run_slowdown_experiment(workload, name, [RETRIEVAL],
                                            params, repetitions=1)[0]
            results[name] = point
        return results

    results = run_measured(benchmark, sweep)
    rows = []
    gains = {}
    for name, point in results.items():
        seq = point.response_times["SEQ"]
        dse = point.response_times["DSE"]
        gains[name] = 1 - dse / seq
        rows.append([name, f"{seq:.3f}", f"{point.response_times['MA']:.3f}",
                     f"{dse:.3f}", f"{point.lwb:.3f}",
                     f"{gains[name] * 100:.1f}"])
    print()
    print(format_table(
        ["slowed", "SEQ (s)", "MA (s)", "DSE (s)", "LWB (s)", "DSE gain %"],
        rows,
        title=f"Slowing each relation to {RETRIEVAL:.0f} s retrieval"))

    assert all(gain > 0 for gain in gains.values())
    # A gates half the query: hardest for DSE to hide.
    assert gains["A"] <= max(gains.values())
    assert gains["F"] > gains["A"]
