"""Ablation — the delay taxonomy of Section 1.2.

"Our solution applies to any kind of delay (initial delay, bursty arrival
and slow delivery)" (Section 6).  This benchmark runs the same query with
each delay type applied to relation A (the chain that gates half the
plan) and compares SEQ and DSE.

Expected shape: DSE improves on SEQ for all three delay categories.
"""

from conftest import run_measured

from repro.core.engine import QueryEngine
from repro.core.strategies import make_policy
from repro.experiments import format_table
from repro.wrappers import BurstyDelay, InitialDelay, UniformDelay


def scenarios(params):
    """Delay-model factories per scenario (fresh models each run)."""
    base = params.w_min
    return {
        "initial delay": lambda: InitialDelay(1.0, UniformDelay(base)),
        "bursty arrival": lambda: BurstyDelay(burst_tuples=4000, gap=0.25,
                                              within_burst_wait=base),
        "slow delivery": lambda: UniformDelay(6 * base),
    }


def test_ablation_delay_types(benchmark, small_workload, params):
    def sweep():
        table = {}
        for label, slow_factory in scenarios(params).items():
            row = {}
            for strategy in ["SEQ", "DSE"]:
                delays = {name: UniformDelay(params.w_min)
                          for name in small_workload.relation_names}
                delays["A"] = slow_factory()
                engine = QueryEngine(small_workload.catalog,
                                     small_workload.qep,
                                     make_policy(strategy), delays,
                                     params=params, seed=2)
                row[strategy] = engine.run()
            table[label] = row
        return table

    table = run_measured(benchmark, sweep)
    print()
    rows = []
    for label, row in table.items():
        gain = 1 - row["DSE"].response_time / row["SEQ"].response_time
        rows.append([label, f"{row['SEQ'].response_time:.3f}",
                     f"{row['DSE'].response_time:.3f}", f"{gain * 100:.1f}"])
    print(format_table(
        ["delay type (on A)", "SEQ (s)", "DSE (s)", "DSE gain %"], rows,
        title="Delay taxonomy: DSE handles all three categories"))

    for label, row in table.items():
        assert row["DSE"].response_time < row["SEQ"].response_time, label
        assert row["DSE"].result_tuples == row["SEQ"].result_tuples, label
