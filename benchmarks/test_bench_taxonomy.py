"""Extension — the adaptation taxonomy of Section 1.1.

The paper classifies dynamic strategies by the level they act at:

* **operator level** — delay-absorbing operators (double-pipelined hash
  join, Tukwila [8]): implemented here as DPHJ;
* **scheduling level** — the paper's contribution: DSE;
* (QEP level — re-optimization — is a detection hook in this system.)

This benchmark runs SEQ, DPHJ and DSE on the Figure 5 workload at w_min
and with F slowed, comparing response time *and* peak memory.

Expected shape: both adaptive strategies absorb delays that stall SEQ;
DPHJ pays for it by keeping both hash tables of every join resident
(several times DSE's peak) — the restriction that motivates adapting at
the scheduling level instead.
"""

from conftest import run_measured

from repro.core.symmetric import SymmetricHashJoinEngine
from repro.experiments import format_table, slowdown_waits
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay


def test_taxonomy(benchmark, workload, params):
    def measure(retrieval_f):
        waits = slowdown_waits(workload, "F", retrieval_f, params)

        def factory():
            return {n: UniformDelay(w) for n, w in waits.items()}

        row = {}
        for strategy in ["SEQ", "DSE"]:
            result = run_once(workload.catalog, workload.qep, strategy,
                              factory, params, seed=1)
            row[strategy] = (result.response_time, result.memory_peak_bytes)
        dphj = SymmetricHashJoinEngine(workload.catalog, workload.tree,
                                       factory(), params=params, seed=1).run()
        row["DPHJ"] = (dphj.response_time, dphj.memory_peak_bytes)
        return row

    def sweep():
        return {"w_min": measure(0.0), "F slowed to 8s": measure(8.0)}

    table = run_measured(benchmark, sweep)
    print()
    rows = []
    for scenario, row in table.items():
        for strategy in ["SEQ", "DPHJ", "DSE"]:
            response, peak = row[strategy]
            rows.append([scenario, strategy, f"{response:.3f}",
                         f"{peak / 1e6:.1f}"])
    print(format_table(
        ["scenario", "strategy", "response (s)", "peak memory (MB)"],
        rows, title="Adaptation levels: operator (DPHJ) vs scheduling (DSE)"))

    for scenario, row in table.items():
        seq_time, _ = row["SEQ"]
        dphj_time, dphj_peak = row["DPHJ"]
        dse_time, dse_peak = row["DSE"]
        # Both adaptive strategies beat the iterator baseline.
        assert dphj_time < seq_time, scenario
        assert dse_time < seq_time, scenario
        # DPHJ's memory price: much higher peak residency than DSE.
        assert dphj_peak > 2 * dse_peak, scenario
