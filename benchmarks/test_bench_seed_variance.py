"""Statistical robustness — variance across seeded repetitions.

The paper repeats each measurement 3 times and averages (Section 5.1.3).
This benchmark runs one Figure 6 point with 5 different seeds per
strategy and reports mean ± standard deviation, verifying that (a) the
per-tuple delay sampling produces only small run-to-run variance at this
data volume, and (b) every qualitative comparison in the reproduction is
far outside that noise band.
"""

import numpy as np
from conftest import run_measured

from repro.experiments import format_table, slowdown_waits
from repro.experiments.runner import run_once
from repro.wrappers import UniformDelay

SEEDS = [1, 2, 3, 4, 5]


def test_seed_variance(benchmark, workload, params):
    waits = slowdown_waits(workload, "F", 6.0, params)

    def factory():
        return {n: UniformDelay(w) for n, w in waits.items()}

    def sweep():
        return {
            strategy: [run_once(workload.catalog, workload.qep, strategy,
                                factory, params, seed=seed).response_time
                       for seed in SEEDS]
            for strategy in ["SEQ", "MA", "DSE"]
        }

    samples = run_measured(benchmark, sweep)
    print()
    rows = []
    stats = {}
    for strategy, values in samples.items():
        mean = float(np.mean(values))
        std = float(np.std(values, ddof=1))
        stats[strategy] = (mean, std)
        rows.append([strategy, f"{mean:.3f}", f"{std:.4f}",
                     f"{std / mean * 100:.2f}"])
    print(format_table(
        ["strategy", "mean (s)", "std (s)", "cv %"],
        rows, title=f"Response time across {len(SEEDS)} seeds "
                    "(F slowed to 6 s)"))

    # Sampling noise is tiny at 580 K tuples (law of large numbers).
    for strategy, (mean, std) in stats.items():
        assert std / mean < 0.02, strategy
    # The strategy ordering is far outside the noise band.
    assert (stats["DSE"][0] + 5 * stats["DSE"][1]
            < stats["SEQ"][0] - 5 * stats["SEQ"][1])
    assert (stats["DSE"][0] + 5 * stats["DSE"][1]
            < stats["MA"][0] - 5 * stats["MA"][1])
